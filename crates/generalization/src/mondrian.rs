//! Multidimensional recoding (Mondrian) under l-diversity — the paper's
//! baseline, "the state-of-the-art algorithm in [9]" (Section 6).
//!
//! Mondrian greedily refines the single all-encompassing QI-group by
//! recursive splits:
//!
//! * a **free-interval** attribute (Table 6: Age, Education) splits at the
//!   median of the node's values;
//! * a **taxonomy** attribute splits into the children of its current
//!   taxonomy node (multiway), so every published interval is an admissible
//!   taxonomy node;
//! * a split is **admissible** only if every resulting side has at least
//!   `l` tuples *and* satisfies the l-diversity eligibility bound
//!   (`max sensitive count × l ≤ size`) — the invariant that guarantees
//!   every leaf group is l-diverse (Definition 2).
//!
//! At each node the attribute with the widest normalized extent is tried
//! first, as in LeFevre et al.; attributes whose split is inadmissible are
//! skipped, and a node where no attribute can split becomes a QI-group.

use crate::error::GenError;
use crate::generalized_table::{GenGroup, GeneralizedTable};
use crate::taxonomy::{TaxNode, Taxonomy};
use anatomy_core::diversity::check_eligibility;
use anatomy_core::Partition;
use anatomy_tables::stats::Histogram;
use anatomy_tables::value::CodeRange;
use anatomy_tables::Microdata;

/// How one QI attribute may be generalized (the last column of Table 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GenMethod {
    /// Interval end points may fall on any domain value.
    FreeInterval,
    /// Intervals must be nodes of the given taxonomy.
    Taxonomy(Taxonomy),
}

/// Configuration for [`mondrian`].
#[derive(Debug, Clone)]
pub struct MondrianConfig {
    /// Diversity parameter `l >= 2`.
    pub l: usize,
    /// Per-QI-attribute generalization method, in microdata QI order.
    pub methods: Vec<GenMethod>,
}

impl MondrianConfig {
    /// All attributes generalized with free intervals.
    pub fn all_free(l: usize, d: usize) -> Self {
        MondrianConfig {
            l,
            methods: vec![GenMethod::FreeInterval; d],
        }
    }
}

/// Per-attribute recursion state.
#[derive(Debug, Clone, Copy)]
enum AttrState {
    Free,
    Tax(TaxNode),
}

/// The admissibility requirement a split must preserve on every side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SplitRequirement {
    /// Definition 2: at least `l` tuples and `max sensitive count × l ≤
    /// size` (so the side can still be partitioned l-diversely).
    LDiverse(usize),
    /// Classic Mondrian: at least `k` tuples; the sensitive distribution
    /// is unconstrained (the homogeneity-attack surface).
    KAnonymous(usize),
}

/// Compute an l-diverse generalized table of `md` by multidimensional
/// recoding. Returns the underlying partition (for analysis) alongside the
/// published table.
pub fn mondrian(
    md: &Microdata,
    cfg: &MondrianConfig,
) -> Result<(Partition, GeneralizedTable), GenError> {
    let d = md.qi_count();
    if cfg.methods.len() != d {
        return Err(GenError::MethodMismatch {
            got: cfg.methods.len(),
            expected: d,
        });
    }
    check_eligibility(md, cfg.l)?;
    for (i, m) in cfg.methods.iter().enumerate() {
        if let GenMethod::Taxonomy(t) = m {
            if t.domain_size() != md.qi_domain_size(i) {
                return Err(GenError::InvalidTaxonomy(format!(
                    "taxonomy for QI attribute {i} covers {} codes but the domain has {}",
                    t.domain_size(),
                    md.qi_domain_size(i)
                )));
            }
        }
    }

    let n = md.len();
    if n == 0 {
        return Ok((
            Partition::new(vec![], 0)?,
            GeneralizedTable::new(vec![], cfg.l),
        ));
    }
    if n < cfg.l {
        // One group of n < l tuples can never be l-diverse.
        return Err(GenError::Core(anatomy_core::CoreError::NotEligible {
            max_count: 1,
            n,
            l: cfg.l,
        }));
    }

    let states: Vec<AttrState> = cfg
        .methods
        .iter()
        .map(|m| match m {
            GenMethod::FreeInterval => AttrState::Free,
            GenMethod::Taxonomy(t) => AttrState::Tax(t.root()),
        })
        .collect();
    let rows: Vec<u32> = (0..n as u32).collect();

    let mut worker = Worker {
        md,
        methods: &cfg.methods,
        req: SplitRequirement::LDiverse(cfg.l),
        groups: Vec::new(),
        gen_groups: Vec::new(),
    };
    worker.split(rows, states);

    let partition = Partition::new(worker.groups, n)?;
    Ok((partition, GeneralizedTable::new(worker.gen_groups, cfg.l)))
}

/// Classic **k-anonymous** Mondrian (the paper's refs [12–14, 9] before
/// l-diversity): splits are admissible when both sides keep at least `k`
/// tuples; the sensitive distribution is unconstrained. Exists to make the
/// k-anonymity-vs-l-diversity comparison of Section 2 concrete — see
/// `anatomy_core::kanonymity` and the `homogeneity_attack` example.
///
/// The returned [`GeneralizedTable`] carries `l = 1`: k-anonymity gives no
/// diversity guarantee.
pub fn mondrian_k_anonymous(
    md: &Microdata,
    methods: &[GenMethod],
    k: usize,
) -> Result<(Partition, GeneralizedTable), GenError> {
    let d = md.qi_count();
    if methods.len() != d {
        return Err(GenError::MethodMismatch {
            got: methods.len(),
            expected: d,
        });
    }
    if k == 0 {
        return Err(GenError::Core(anatomy_core::CoreError::InvalidL(0)));
    }
    let n = md.len();
    if n == 0 {
        return Ok((Partition::new(vec![], 0)?, GeneralizedTable::new(vec![], 1)));
    }
    if n < k {
        return Err(GenError::Core(anatomy_core::CoreError::NotEligible {
            max_count: 1,
            n,
            l: k,
        }));
    }
    let states: Vec<AttrState> = methods
        .iter()
        .map(|m| match m {
            GenMethod::FreeInterval => AttrState::Free,
            GenMethod::Taxonomy(t) => AttrState::Tax(t.root()),
        })
        .collect();
    let rows: Vec<u32> = (0..n as u32).collect();
    let mut worker = Worker {
        md,
        methods,
        req: SplitRequirement::KAnonymous(k),
        groups: Vec::new(),
        gen_groups: Vec::new(),
    };
    worker.split(rows, states);
    let partition = Partition::new(worker.groups, n)?;
    Ok((partition, GeneralizedTable::new(worker.gen_groups, 1)))
}

struct Worker<'a> {
    md: &'a Microdata,
    methods: &'a [GenMethod],
    req: SplitRequirement,
    groups: Vec<Vec<u32>>,
    gen_groups: Vec<GenGroup>,
}

impl Worker<'_> {
    /// Observed `[min, max]` of QI attribute `i` over `rows`.
    fn observed(&self, rows: &[u32], i: usize) -> CodeRange {
        let col = self.md.qi_codes(i);
        let mut lo = u32::MAX;
        let mut hi = 0u32;
        for &r in rows {
            let v = col[r as usize];
            lo = lo.min(v);
            hi = hi.max(v);
        }
        CodeRange::new(lo, hi)
    }

    /// Whether a candidate side keeps the requirement satisfiable.
    fn side_ok(&self, rows: &[u32]) -> bool {
        match self.req {
            SplitRequirement::KAnonymous(k) => rows.len() >= k,
            SplitRequirement::LDiverse(l) => {
                if rows.len() < l {
                    return false;
                }
                let idx: Vec<usize> = rows.iter().map(|&r| r as usize).collect();
                let hist = Histogram::of_rows(
                    self.md.sensitive_codes(),
                    &idx,
                    self.md.sensitive_domain_size(),
                );
                hist.max().is_none_or(|(_, c)| c * l <= rows.len())
            }
        }
    }

    fn split(&mut self, rows: Vec<u32>, states: Vec<AttrState>) {
        let d = self.md.qi_count();
        let observed: Vec<CodeRange> = (0..d).map(|i| self.observed(&rows, i)).collect();

        // Widest normalized extent first (LeFevre et al.'s heuristic).
        let mut order: Vec<usize> = (0..d).collect();
        let width = |i: usize| -> f64 {
            let extent = match states[i] {
                AttrState::Free => observed[i].len(),
                AttrState::Tax(node) => {
                    if node.range.len() == 1 {
                        1
                    } else {
                        observed[i].len()
                    }
                }
            };
            (extent - 1) as f64 / self.md.qi_domain_size(i) as f64
        };
        order.sort_by(|&a, &b| width(b).partial_cmp(&width(a)).unwrap().then(a.cmp(&b)));

        for &i in &order {
            match states[i] {
                AttrState::Free => {
                    if observed[i].len() == 1 {
                        continue;
                    }
                    if let Some((left, right)) = self.try_median_split(&rows, i, observed[i]) {
                        self.split(left, states.clone());
                        self.split(right, states);
                        return;
                    }
                }
                AttrState::Tax(node) => {
                    let tax = match self.methods[i] {
                        GenMethod::Taxonomy(t) => t,
                        GenMethod::FreeInterval => unreachable!("state/method agree"),
                    };
                    // Descend to the LCA of the observed values first: a
                    // node whose values fit a single child splits for free.
                    let node = tax.lca(
                        observed[i].lo.max(node.range.lo),
                        observed[i].hi.min(node.range.hi),
                    );
                    if let Some(parts) = self.try_taxonomy_split(&rows, i, &tax, node) {
                        for (child, child_rows) in parts {
                            let mut child_states = states.clone();
                            child_states[i] = AttrState::Tax(child);
                            self.split(child_rows, child_states);
                        }
                        return;
                    }
                }
            }
        }

        // Leaf: publish the group.
        let ranges: Vec<CodeRange> = (0..d)
            .map(|i| match self.methods[i] {
                GenMethod::FreeInterval => observed[i],
                GenMethod::Taxonomy(t) => t.lca(observed[i].lo, observed[i].hi).range,
            })
            .collect();
        self.gen_groups
            .push(GenGroup::from_rows(self.md, &rows, ranges));
        self.groups.push(rows);
    }

    /// Median split on free-interval attribute `i`; `None` if inadmissible.
    fn try_median_split(
        &self,
        rows: &[u32],
        i: usize,
        range: CodeRange,
    ) -> Option<(Vec<u32>, Vec<u32>)> {
        let col = self.md.qi_codes(i);
        // Histogram over the observed range (offset to keep it small).
        let span = range.len() as usize;
        let mut hist = vec![0usize; span];
        for &r in rows {
            hist[(col[r as usize] - range.lo) as usize] += 1;
        }
        // Smallest value whose cumulative count reaches half.
        let half = rows.len().div_ceil(2);
        let mut cum = 0usize;
        let mut split = range.hi;
        for (off, &c) in hist.iter().enumerate() {
            cum += c;
            if cum >= half {
                split = range.lo + off as u32;
                break;
            }
        }
        if split >= range.hi {
            // Keep the right side non-empty: back off to the largest
            // populated value below the maximum.
            let mut fallback = None;
            for off in (0..span - 1).rev() {
                if hist[off] > 0 {
                    fallback = Some(range.lo + off as u32);
                    break;
                }
            }
            split = fallback?;
        }
        let (mut left, mut right) = (Vec::new(), Vec::new());
        for &r in rows {
            if col[r as usize] <= split {
                left.push(r);
            } else {
                right.push(r);
            }
        }
        if self.side_ok(&left) && self.side_ok(&right) {
            Some((left, right))
        } else {
            None
        }
    }

    /// Multiway taxonomy split of attribute `i` at `node`; `None` if
    /// inadmissible (fewer than two non-empty children, or some child
    /// cannot be l-diverse).
    fn try_taxonomy_split(
        &self,
        rows: &[u32],
        i: usize,
        tax: &Taxonomy,
        node: TaxNode,
    ) -> Option<Vec<(TaxNode, Vec<u32>)>> {
        let children = tax.children(node);
        if children.is_empty() {
            return None;
        }
        let col = self.md.qi_codes(i);
        let mut parts: Vec<(TaxNode, Vec<u32>)> =
            children.into_iter().map(|c| (c, Vec::new())).collect();
        'rows: for &r in rows {
            let v = col[r as usize];
            for (child, bucket) in parts.iter_mut() {
                if child.range.contains(v) {
                    bucket.push(r);
                    continue 'rows;
                }
            }
            unreachable!("children tile the parent");
        }
        parts.retain(|(_, b)| !b.is_empty());
        if parts.len() < 2 {
            return None;
        }
        if parts.iter().all(|(_, b)| self.side_ok(b)) {
            Some(parts)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anatomy_tables::{Attribute, Schema, TableBuilder, Value};

    /// The paper's Table 1 (diseases: bron=0, dysp=1, flu=2, gast=3,
    /// pneu=4).
    fn paper_md() -> Microdata {
        let schema = Schema::new(vec![
            Attribute::numerical("Age", 100),
            Attribute::categorical("Sex", 2),
            Attribute::numerical("Zipcode", 60),
            Attribute::categorical("Disease", 5),
        ])
        .unwrap();
        let mut b = TableBuilder::new(schema);
        for row in [
            [23, 0, 11, 4],
            [27, 0, 13, 1],
            [35, 0, 59, 1],
            [59, 0, 12, 4],
            [61, 1, 54, 2],
            [65, 1, 25, 3],
            [65, 1, 25, 2],
            [70, 1, 30, 0],
        ] {
            b.push_row(&row).unwrap();
        }
        Microdata::with_leading_qi(b.finish(), 3).unwrap()
    }

    fn paper_config() -> MondrianConfig {
        MondrianConfig {
            l: 2,
            methods: vec![
                GenMethod::FreeInterval,
                GenMethod::Taxonomy(Taxonomy::new(2, 2).unwrap()),
                GenMethod::FreeInterval,
            ],
        }
    }

    fn check_invariants(md: &Microdata, p: &Partition, t: &GeneralizedTable, l: usize) {
        assert!(p.is_l_diverse(md, l), "partition not {l}-diverse");
        assert!(t.is_l_diverse());
        assert_eq!(t.len(), md.len());
        assert_eq!(t.group_count(), p.group_count());
        // Every tuple's QI values lie inside its group's ranges.
        for (j, group) in t.groups().iter().enumerate() {
            for &r in p.group(j as u32) {
                for (i, range) in group.ranges.iter().enumerate() {
                    let v = md.qi_value(r as usize, i).code();
                    assert!(range.contains(v), "group {j} attr {i}: {v} outside {range}");
                }
            }
            assert!(group.size as usize >= l);
        }
    }

    #[test]
    fn paper_example_generalizes() {
        let md = paper_md();
        let (p, t) = mondrian(&md, &paper_config()).unwrap();
        check_invariants(&md, &p, &t, 2);
        // Mondrian splits at least on Sex (perfectly balanced, eligible).
        assert!(t.group_count() >= 2);
    }

    #[test]
    fn taxonomy_constrains_intervals() {
        let md = paper_md();
        let (p, t) = mondrian(&md, &paper_config()).unwrap();
        check_invariants(&md, &p, &t, 2);
        // Sex intervals must be taxonomy nodes: the whole domain or single
        // codes.
        for g in t.groups() {
            let sex = g.ranges[1];
            assert!(sex.len() == 2 || sex.len() == 1);
        }
    }

    #[test]
    fn all_free_single_attribute() {
        // 16 tuples, ages 0..16, alternating sensitive values: every
        // median cut halves evenly, so Mondrian refines all the way to
        // pairs.
        let schema = Schema::new(vec![
            Attribute::numerical("Age", 30),
            Attribute::categorical("S", 2),
        ])
        .unwrap();
        let mut b = TableBuilder::new(schema);
        for i in 0..16u32 {
            b.push_row(&[i, i % 2]).unwrap();
        }
        let md = Microdata::with_leading_qi(b.finish(), 1).unwrap();
        let (p, t) = mondrian(&md, &MondrianConfig::all_free(2, 1)).unwrap();
        check_invariants(&md, &p, &t, 2);
        assert_eq!(t.group_count(), 8, "alternating data should split to pairs");
        for g in t.groups() {
            assert_eq!(g.size, 2);
            assert_eq!(g.volume(), 2);
        }
    }

    #[test]
    fn skewed_sensitive_blocks_splits() {
        // All tuples share one sensitive value except a handful: with l = 2
        // the eligibility bound blocks almost every split.
        let schema = Schema::new(vec![
            Attribute::numerical("Age", 100),
            Attribute::categorical("S", 4),
        ])
        .unwrap();
        let mut b = TableBuilder::new(schema);
        for i in 0..16u32 {
            b.push_row(&[i, if i < 8 { 0 } else { 1 + i % 3 }]).unwrap();
        }
        let md = Microdata::with_leading_qi(b.finish(), 1).unwrap();
        let (p, t) = mondrian(&md, &MondrianConfig::all_free(2, 1)).unwrap();
        check_invariants(&md, &p, &t, 2);
    }

    #[test]
    fn rejects_bad_inputs() {
        let md = paper_md();
        // Wrong number of methods.
        assert!(matches!(
            mondrian(&md, &MondrianConfig::all_free(2, 1)),
            Err(GenError::MethodMismatch { .. })
        ));
        // Taxonomy over the wrong domain.
        let bad = MondrianConfig {
            l: 2,
            methods: vec![
                GenMethod::FreeInterval,
                GenMethod::Taxonomy(Taxonomy::new(7, 2).unwrap()),
                GenMethod::FreeInterval,
            ],
        };
        assert!(matches!(
            mondrian(&md, &bad),
            Err(GenError::InvalidTaxonomy(_))
        ));
        // Ineligible l.
        let too_diverse = MondrianConfig {
            l: 5,
            methods: paper_config().methods,
        };
        assert!(matches!(
            mondrian(&md, &too_diverse),
            Err(GenError::Core(_))
        ));
    }

    #[test]
    fn k_anonymous_mondrian_ignores_sensitive_distribution() {
        // All tuples share one disease: no l-diverse table exists for any
        // l >= 2, but a k-anonymous one does — and it is fully breached.
        let schema = Schema::new(vec![
            Attribute::numerical("Age", 100),
            Attribute::categorical("S", 5),
        ])
        .unwrap();
        let mut b = TableBuilder::new(schema);
        for i in 0..16u32 {
            b.push_row(&[i, 0]).unwrap();
        }
        let md = Microdata::with_leading_qi(b.finish(), 1).unwrap();
        assert!(mondrian(&md, &MondrianConfig::all_free(2, 1)).is_err());

        let (p, t) = mondrian_k_anonymous(&md, &[GenMethod::FreeInterval], 4).unwrap();
        assert!(anatomy_core::kanonymity::partition_is_k_anonymous(&p, 4));
        assert_eq!(t.l(), 1);
        // Homogeneous groups: the adversary wins with certainty.
        assert_eq!(anatomy_core::kanonymity::homogeneity_breach(&md, &p), 1.0);
        // k-anonymity splits further than l-diversity could (no sensitive
        // constraint): 16 tuples -> 4 groups of 4.
        assert_eq!(p.group_count(), 4);
    }

    #[test]
    fn k_anonymous_mondrian_validates_inputs() {
        let md = paper_md();
        let methods = paper_config().methods;
        assert!(mondrian_k_anonymous(&md, &methods[..1], 2).is_err()); // arity
        assert!(mondrian_k_anonymous(&md, &methods, 0).is_err()); // k = 0
        assert!(mondrian_k_anonymous(&md, &methods, 9).is_err()); // k > n
        let (p, _) = mondrian_k_anonymous(&md, &methods, 2).unwrap();
        assert!(anatomy_core::kanonymity::partition_is_k_anonymous(&p, 2));
    }

    #[test]
    fn n_smaller_than_l_rejected() {
        let schema = Schema::new(vec![
            Attribute::numerical("A", 10),
            Attribute::categorical("S", 5),
        ])
        .unwrap();
        let mut b = TableBuilder::new(schema);
        b.push_row(&[0, 0]).unwrap();
        b.push_row(&[1, 1]).unwrap();
        let md = Microdata::with_leading_qi(b.finish(), 1).unwrap();
        assert!(mondrian(&md, &MondrianConfig::all_free(3, 1)).is_err());
    }

    #[test]
    fn empty_input() {
        let schema = Schema::new(vec![
            Attribute::numerical("A", 10),
            Attribute::categorical("S", 5),
        ])
        .unwrap();
        let md = Microdata::with_leading_qi(TableBuilder::new(schema).finish(), 1).unwrap();
        let (p, t) = mondrian(&md, &MondrianConfig::all_free(2, 1)).unwrap();
        assert!(p.is_empty());
        assert!(t.is_empty());
    }

    #[test]
    fn groups_histograms_match_partition() {
        let md = paper_md();
        let (p, t) = mondrian(&md, &paper_config()).unwrap();
        for (j, g) in t.groups().iter().enumerate() {
            let hist = p.sensitive_histogram(&md, j as u32);
            for &(v, c) in &g.sens_counts {
                assert_eq!(hist.count(v), c as usize);
            }
        }
        let _ = Value(0); // keep import used in all cfgs
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]
            /// Mondrian output is always a valid l-diverse generalization
            /// when the input is eligible.
            #[test]
            fn mondrian_output_valid(
                vals in proptest::collection::vec((0u32..20, 0u32..6), 8..120),
                l in 2usize..4,
            ) {
                let schema = Schema::new(vec![
                    Attribute::numerical("A", 20),
                    Attribute::categorical("S", 6),
                ]).unwrap();
                let mut b = TableBuilder::new(schema);
                for &(a, s) in &vals {
                    b.push_row(&[a, s]).unwrap();
                }
                let md = Microdata::with_leading_qi(b.finish(), 1).unwrap();
                if let Ok((p, t)) = mondrian(&md, &MondrianConfig::all_free(l, 1)) {
                    check_invariants(&md, &p, &t, l);
                }
            }
        }
    }
}
