//! Information-loss metrics.
//!
//! The paper quantifies utility through the re-construction error (RCE,
//! Section 4) and, in Section 7, points at alternative metrics —
//! KL-divergence (ref [7]) and discernibility (refs [4, 9]) — as future
//! work for anatomized tables. This module implements both, plus the
//! normalized certainty penalty common in the generalization literature,
//! so the two publication styles can be compared under several lenses.

use crate::generalized_table::GeneralizedTable;
use anatomy_core::{AnatomizedTables, Partition};

/// Per-tuple generalization reconstruction error `1 − 1/V` (Section 4).
pub fn err_gen_tuple(volume: u64) -> f64 {
    debug_assert!(volume >= 1);
    1.0 - 1.0 / volume as f64
}

/// The discernibility metric `Σ_j |QI_j|²` (refs [4, 9]): every tuple is
/// charged the size of its group. Lower is better; the minimum for an
/// l-diverse table is `n·l`.
pub fn discernibility(group_sizes: &[usize]) -> u64 {
    group_sizes.iter().map(|&s| (s * s) as u64).sum()
}

/// Discernibility of a partition.
pub fn discernibility_of_partition(p: &Partition) -> u64 {
    discernibility(&p.group_sizes())
}

/// Average QI-group size `n / m`.
pub fn average_group_size(group_sizes: &[usize]) -> f64 {
    if group_sizes.is_empty() {
        return 0.0;
    }
    let n: usize = group_sizes.iter().sum();
    n as f64 / group_sizes.len() as f64
}

/// Normalized certainty penalty of a generalized table:
/// `Σ_t Σ_i (L_i − 1) / (|A_i| − 1)`, averaged per tuple and per attribute
/// to land in `[0, 1]`. 0 = exact values; 1 = every interval spans its
/// whole domain. Single-valued domains contribute 0.
pub fn ncp(table: &GeneralizedTable, domain_sizes: &[u32]) -> f64 {
    let n = table.len();
    if n == 0 {
        return 0.0;
    }
    let d = domain_sizes.len();
    let mut total = 0.0;
    for g in table.groups() {
        debug_assert_eq!(g.ranges.len(), d);
        let mut per_tuple = 0.0;
        for (range, &dom) in g.ranges.iter().zip(domain_sizes) {
            if dom > 1 {
                per_tuple += (range.len() - 1) as f64 / (dom - 1) as f64;
            }
        }
        total += g.size as f64 * per_tuple;
    }
    total / (n as f64 * d as f64)
}

/// KL-divergence `Σ_t KL(G_t ‖ Ĝ^ana_t)` of anatomized tables from the
/// truth. Since the true pdf is a unit spike at `t`, the per-tuple
/// divergence is `−ln Ĝ(t) = ln(|QI_j| / c_j(v_t))`; summing `c·ln(s/c)`
/// over ST records needs no microdata.
pub fn kl_anatomy(tables: &AnatomizedTables) -> f64 {
    let mut total = 0.0;
    for j in 0..tables.group_count() as u32 {
        let s = tables.group_size(j) as f64;
        for rec in tables.st_of(j) {
            let c = rec.count as f64;
            total += c * (s / c).ln();
        }
    }
    total
}

/// KL-divergence `Σ_t KL(G_t ‖ Ĝ^gen_t)` of a generalized table from the
/// truth: per tuple `−ln(1/V) = ln V` (the sensitive value is exact, the
/// QI mass is spread over the rectangle).
pub fn kl_generalization(table: &GeneralizedTable) -> f64 {
    table
        .groups()
        .iter()
        .map(|g| g.size as f64 * (g.volume() as f64).ln())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generalized_table::GenGroup;
    use anatomy_core::anatomize::{anatomize, AnatomizeConfig};
    use anatomy_tables::value::CodeRange;
    use anatomy_tables::{Attribute, Microdata, Schema, TableBuilder, Value};

    fn md() -> Microdata {
        let schema = Schema::new(vec![
            Attribute::numerical("Age", 100),
            Attribute::categorical("S", 6),
        ])
        .unwrap();
        let mut b = TableBuilder::new(schema);
        for i in 0..24u32 {
            b.push_row(&[i * 4, i % 6]).unwrap();
        }
        Microdata::with_leading_qi(b.finish(), 1).unwrap()
    }

    #[test]
    fn discernibility_squares_sizes() {
        assert_eq!(discernibility(&[4, 4]), 32);
        assert_eq!(discernibility(&[2, 2, 2, 2]), 16);
        assert_eq!(discernibility(&[]), 0);
    }

    #[test]
    fn average_group_size_basic() {
        assert_eq!(average_group_size(&[4, 4]), 4.0);
        assert_eq!(average_group_size(&[2, 4]), 3.0);
        assert_eq!(average_group_size(&[]), 0.0);
    }

    #[test]
    fn ncp_bounds() {
        let exact = GeneralizedTable::new(
            vec![GenGroup {
                ranges: vec![CodeRange::point(5)],
                size: 3,
                sens_counts: vec![(Value(0), 1), (Value(1), 2)],
            }],
            2,
        );
        assert_eq!(ncp(&exact, &[100]), 0.0);
        let full = GeneralizedTable::new(
            vec![GenGroup {
                ranges: vec![CodeRange::new(0, 99)],
                size: 3,
                sens_counts: vec![(Value(0), 1), (Value(1), 2)],
            }],
            2,
        );
        assert!((ncp(&full, &[100]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn kl_anatomy_zero_for_exact_and_positive_otherwise() {
        let md = md();
        let p = anatomize(&md, &AnatomizeConfig::new(3)).unwrap();
        let t = AnatomizedTables::publish(&md, &p, 3).unwrap();
        let kl = kl_anatomy(&t);
        // All groups have distinct values (c = 1), so KL = Σ ln(s) =
        // n * ln(group size) for uniform sizes.
        assert!(kl > 0.0);
        let expected: f64 = (0..t.group_count() as u32)
            .map(|j| t.group_size(j) as f64 * (t.group_size(j) as f64).ln())
            .sum();
        assert!((kl - expected).abs() < 1e-9);
    }

    #[test]
    fn kl_generalization_is_log_volume() {
        let g = GenGroup {
            ranges: vec![CodeRange::new(0, 9), CodeRange::new(0, 4)],
            size: 4,
            sens_counts: vec![(Value(0), 2), (Value(1), 2)],
        };
        let t = GeneralizedTable::new(vec![g], 2);
        let kl = kl_generalization(&t);
        assert!((kl - 4.0 * (50f64).ln()).abs() < 1e-9);
    }

    #[test]
    fn anatomy_kl_beats_generalization_kl_on_wide_rectangles() {
        // Anatomy's ambiguity is over ~l sensitive values; generalization's
        // is over the whole rectangle volume — typically much larger.
        let md = md();
        let p = anatomize(&md, &AnatomizeConfig::new(3)).unwrap();
        let t = AnatomizedTables::publish(&md, &p, 3).unwrap();
        let gen = GeneralizedTable::new(
            vec![GenGroup {
                ranges: vec![CodeRange::new(0, 99)],
                size: 24,
                sens_counts: vec![(Value(0), 4)],
            }],
            3,
        );
        assert!(kl_anatomy(&t) < kl_generalization(&gen));
    }
}
