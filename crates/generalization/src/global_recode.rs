//! Single-dimension, full-domain global recoding — the *more constrained*
//! encoding class of the paper's Section 2 taxonomy (after Samarati and
//! Sweeney, the paper's refs [12, 13]).
//!
//! In this scheme every QI attribute has one *generalization level* applied
//! uniformly to the whole table: a free-interval attribute at level `ℓ` is
//! bucketed into equal-width bins of `2^ℓ` codes; a taxonomy attribute at
//! level `ℓ` is generalized to its ancestor `ℓ` steps above the leaves.
//! QI-groups are simply the distinct generalized vectors, so "the
//! generalized forms of two arbitrary QI-groups on the same attribute are
//! either disjoint or equivalent" — the paper's definition of
//! single-dimension encoding.
//!
//! The level search is the classic greedy bottom-up: start fully specific;
//! while some group violates l-diversity, raise the level of the attribute
//! that currently contributes the most distinct values. Termination is
//! guaranteed: at maximum levels the table collapses into one group, which
//! is l-diverse by the eligibility condition.
//!
//! This exists as a measurable baseline-of-the-baseline: `repro encoding`
//! shows multidimensional recoding (Mondrian) beating it on query accuracy,
//! and anatomy beating both — the ordering the paper's Section 2 narrative
//! implies.

use crate::error::GenError;
use crate::generalized_table::{GenGroup, GeneralizedTable};
use crate::mondrian::GenMethod;
use anatomy_core::diversity::{check_eligibility, group_is_l_diverse};
use anatomy_core::Partition;
use anatomy_tables::stats::Histogram;
use anatomy_tables::value::CodeRange;
use anatomy_tables::Microdata;
use std::collections::HashMap;

/// The per-attribute levels a recoding settled on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecodingLevels {
    /// Level per QI attribute (0 = exact values).
    pub levels: Vec<u32>,
}

/// Maximum level of one attribute under `method` (the level at which every
/// value maps to the full domain / the taxonomy root).
fn max_level(method: &GenMethod, domain_size: u32) -> u32 {
    match method {
        GenMethod::FreeInterval => {
            // Smallest ℓ with 2^ℓ >= domain_size.
            let mut level = 0;
            while (1u64 << level) < domain_size as u64 {
                level += 1;
            }
            level
        }
        GenMethod::Taxonomy(t) => t.height() - 1,
    }
}

/// The generalized interval of `value` at `level`.
fn interval_at(method: &GenMethod, domain_size: u32, level: u32, value: u32) -> CodeRange {
    match method {
        GenMethod::FreeInterval => {
            let width = 1u64 << level;
            let lo = (value as u64 / width) * width;
            let hi = (lo + width - 1).min(domain_size as u64 - 1);
            CodeRange::new(lo as u32, hi as u32)
        }
        GenMethod::Taxonomy(t) => {
            // Descend from the root to the node at depth (height-1-level)
            // containing `value`.
            let target_depth = t.height() - 1 - level;
            let mut node = t.root();
            while node.depth < target_depth {
                let next = t
                    .children(node)
                    .into_iter()
                    .find(|c| c.range.contains(value))
                    .expect("children tile the parent");
                node = next;
            }
            node.range
        }
    }
}

/// Compute an l-diverse single-dimension full-domain generalization.
///
/// Returns the partition, the generalized table, and the levels chosen.
pub fn global_recode(
    md: &Microdata,
    methods: &[GenMethod],
    l: usize,
) -> Result<(Partition, GeneralizedTable, RecodingLevels), GenError> {
    let d = md.qi_count();
    if methods.len() != d {
        return Err(GenError::MethodMismatch {
            got: methods.len(),
            expected: d,
        });
    }
    check_eligibility(md, l)?;
    for (i, m) in methods.iter().enumerate() {
        if let GenMethod::Taxonomy(t) = m {
            if t.domain_size() != md.qi_domain_size(i) {
                return Err(GenError::InvalidTaxonomy(format!(
                    "taxonomy for QI attribute {i} covers {} codes but the domain has {}",
                    t.domain_size(),
                    md.qi_domain_size(i)
                )));
            }
        }
    }
    let n = md.len();
    if n == 0 {
        return Ok((
            Partition::new(vec![], 0)?,
            GeneralizedTable::new(vec![], l),
            RecodingLevels { levels: vec![0; d] },
        ));
    }
    if n < l {
        return Err(GenError::Core(anatomy_core::CoreError::NotEligible {
            max_count: 1,
            n,
            l,
        }));
    }

    let domains: Vec<u32> = (0..d).map(|i| md.qi_domain_size(i)).collect();
    let max_levels: Vec<u32> = methods
        .iter()
        .zip(&domains)
        .map(|(m, &dom)| max_level(m, dom))
        .collect();
    let mut levels = vec![0u32; d];

    loop {
        // Group rows by their generalized vector at the current levels.
        let mut groups: HashMap<Vec<u32>, Vec<u32>> = HashMap::new();
        for r in 0..n {
            let key: Vec<u32> = (0..d)
                .map(|i| {
                    interval_at(&methods[i], domains[i], levels[i], md.qi_value(r, i).code()).lo
                })
                .collect();
            groups.entry(key).or_default().push(r as u32);
        }

        // Check Definition 2 on every group.
        let all_ok = groups.values().all(|rows| {
            if rows.len() < l {
                return false;
            }
            let idx: Vec<usize> = rows.iter().map(|&r| r as usize).collect();
            let hist = Histogram::of_rows(md.sensitive_codes(), &idx, md.sensitive_domain_size());
            group_is_l_diverse(&hist, l)
        });

        if all_ok {
            // Deterministic group order: sort by key.
            let mut entries: Vec<(Vec<u32>, Vec<u32>)> = groups.into_iter().collect();
            entries.sort_unstable_by(|a, b| a.0.cmp(&b.0));
            let mut partition_rows = Vec::with_capacity(entries.len());
            let mut gen_groups = Vec::with_capacity(entries.len());
            for (_, rows) in entries {
                let ranges: Vec<CodeRange> = (0..d)
                    .map(|i| {
                        interval_at(
                            &methods[i],
                            domains[i],
                            levels[i],
                            md.qi_value(rows[0] as usize, i).code(),
                        )
                    })
                    .collect();
                gen_groups.push(GenGroup::from_rows(md, &rows, ranges));
                partition_rows.push(rows);
            }
            let partition = Partition::new(partition_rows, n)?;
            return Ok((
                partition,
                GeneralizedTable::new(gen_groups, l),
                RecodingLevels { levels },
            ));
        }

        // Generalize further: raise the level of the attribute with the
        // most distinct generalized values (the one still doing the most
        // splitting). All attributes at max level cannot happen while a
        // group violates, by eligibility.
        let mut best: Option<(usize, usize)> = None; // (attr, distinct)
        for i in 0..d {
            if levels[i] >= max_levels[i] {
                continue;
            }
            let mut seen: Vec<u32> = md
                .qi_codes(i)
                .iter()
                .map(|&v| interval_at(&methods[i], domains[i], levels[i], v).lo)
                .collect();
            seen.sort_unstable();
            seen.dedup();
            if best.is_none_or(|(_, s)| seen.len() > s) {
                best = Some((i, seen.len()));
            }
        }
        match best {
            Some((i, _)) => levels[i] += 1,
            None => {
                // Everything at the root and still violating: impossible
                // for eligible input, but fail loudly rather than loop.
                return Err(GenError::Core(anatomy_core::CoreError::InvalidPartition(
                    "global recoding exhausted all levels without reaching l-diversity".into(),
                )));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taxonomy::Taxonomy;
    use anatomy_tables::{Attribute, Schema, TableBuilder};

    fn md_linear(n: usize, s_dom: u32) -> Microdata {
        let schema = Schema::new(vec![
            Attribute::numerical("A", 64),
            Attribute::categorical("S", s_dom),
        ])
        .unwrap();
        let mut b = TableBuilder::new(schema);
        for i in 0..n as u32 {
            b.push_row(&[i % 64, i % s_dom]).unwrap();
        }
        Microdata::with_leading_qi(b.finish(), 1).unwrap()
    }

    #[test]
    fn levels_and_intervals_for_free_attributes() {
        let m = GenMethod::FreeInterval;
        assert_eq!(max_level(&m, 64), 6);
        assert_eq!(max_level(&m, 78), 7);
        assert_eq!(interval_at(&m, 64, 0, 13), CodeRange::point(13));
        assert_eq!(interval_at(&m, 64, 2, 13), CodeRange::new(12, 15));
        assert_eq!(interval_at(&m, 64, 6, 13), CodeRange::new(0, 63));
        // Last bin clips to the domain.
        assert_eq!(interval_at(&m, 78, 3, 77), CodeRange::new(72, 77));
    }

    #[test]
    fn levels_and_intervals_for_taxonomy_attributes() {
        let t = Taxonomy::new(8, 4).unwrap(); // perfect binary over 8 codes
        let m = GenMethod::Taxonomy(t);
        assert_eq!(max_level(&m, 8), 3);
        assert_eq!(interval_at(&m, 8, 0, 5), CodeRange::point(5));
        assert_eq!(interval_at(&m, 8, 1, 5), CodeRange::new(4, 5));
        assert_eq!(interval_at(&m, 8, 2, 5), CodeRange::new(4, 7));
        assert_eq!(interval_at(&m, 8, 3, 5), CodeRange::new(0, 7));
    }

    #[test]
    fn recoding_reaches_l_diversity() {
        let md = md_linear(128, 4);
        let (p, t, levels) = global_recode(&md, &[GenMethod::FreeInterval], 2).unwrap();
        assert!(p.is_l_diverse(&md, 2));
        assert!(t.is_l_diverse());
        assert_eq!(t.len(), 128);
        assert!(
            levels.levels[0] >= 1,
            "exact values cannot be 2-diverse here"
        );
        // Single-dimension property: all groups share the same interval
        // structure (equal widths) and are pairwise disjoint.
        let mut los: Vec<u32> = t.groups().iter().map(|g| g.ranges[0].lo).collect();
        los.sort_unstable();
        los.dedup();
        assert_eq!(los.len(), t.group_count());
    }

    #[test]
    fn recoding_collapses_to_root_on_hostile_data() {
        // Sensitive value equals A's low bit: every proper binning of A
        // still separates... actually value = (A % 2): bins of width 2
        // mix both values evenly, so level 1 suffices.
        let schema = Schema::new(vec![
            Attribute::numerical("A", 16),
            Attribute::categorical("S", 2),
        ])
        .unwrap();
        let mut b = TableBuilder::new(schema);
        for i in 0..32u32 {
            b.push_row(&[i % 16, i % 2]).unwrap();
        }
        let md = Microdata::with_leading_qi(b.finish(), 1).unwrap();
        let (_, _, levels) = global_recode(&md, &[GenMethod::FreeInterval], 2).unwrap();
        assert_eq!(levels.levels[0], 1);
    }

    #[test]
    fn multidimensional_recoding_is_at_least_as_fine() {
        // Global recoding can never produce more groups than Mondrian on
        // the same data (its admissible grouping set is a subset).
        let md = md_linear(96, 3);
        let (gp, ..) = global_recode(&md, &[GenMethod::FreeInterval], 3).unwrap();
        let (mp, _) =
            crate::mondrian::mondrian(&md, &crate::mondrian::MondrianConfig::all_free(3, 1))
                .unwrap();
        assert!(mp.group_count() >= gp.group_count());
    }

    #[test]
    fn rejects_bad_inputs() {
        let md = md_linear(10, 2);
        assert!(global_recode(&md, &[], 2).is_err());
        let skew = {
            let schema = Schema::new(vec![
                Attribute::numerical("A", 8),
                Attribute::categorical("S", 2),
            ])
            .unwrap();
            let mut b = TableBuilder::new(schema);
            for i in 0..8u32 {
                b.push_row(&[i, 0]).unwrap();
            }
            Microdata::with_leading_qi(b.finish(), 1).unwrap()
        };
        assert!(global_recode(&skew, &[GenMethod::FreeInterval], 2).is_err());
    }

    #[test]
    fn empty_input_is_fine() {
        let md = md_linear(0, 2);
        let (p, t, _) = global_recode(&md, &[GenMethod::FreeInterval], 2).unwrap();
        assert!(p.is_empty());
        assert!(t.is_empty());
    }
}
