//! External Mondrian with logical I/O accounting — the "generalization"
//! series of the paper's Figures 8 and 9.
//!
//! Each recursion node lives in its own sequential file. Processing a node
//! costs:
//!
//! * one **statistics pass** (read) per attribute *tried*: a joint
//!   (attribute value × sensitive value) count array — `O(|A|·λ)` memory —
//!   from which the median and both sides' l-diversity eligibility are
//!   decided without a second scan;
//! * one **split pass** (read + write) routing records into the child
//!   files, tracking each child's per-attribute observed ranges on the fly;
//! * for leaves, one **output pass** (read + write) emitting the
//!   generalized records `(lo_1, hi_1, …, lo_d, hi_d, sensitive)`.
//!
//! The recursion depth is `Θ(log(n/l))`, so the total cost is
//! `Θ((n/b)·log(n/l))` — superlinear, which is exactly the behaviour the
//! paper reports for generalization against `Anatomize`'s `O(n/b)`
//! (Section 6.2: "the cost of anatomy scales linearly with n, as opposed to
//! the super-linear behavior of generalization").

use crate::error::GenError;
use crate::mondrian::{GenMethod, MondrianConfig};
use crate::taxonomy::TaxNode;
use anatomy_core::anatomize_io::microdata_to_file;
use anatomy_core::diversity::check_eligibility;
use anatomy_storage::{
    BufferPool, IoCounter, IoStats, PageConfig, SeqReader, SeqWriter, SimFile, U32RowCodec,
};
use anatomy_tables::value::CodeRange;
use anatomy_tables::Microdata;

/// Output of [`mondrian_external`].
#[derive(Debug, Clone)]
pub struct ExternalMondrianOutput {
    /// The generalized table file: records
    /// `(lo_1, hi_1, …, lo_d, hi_d, sensitive)` per tuple (Definition 4).
    pub table: SimFile,
    /// Number of QI-groups produced.
    pub groups: usize,
    /// Logical I/O incurred (excludes writing the input, which models
    /// pre-existing data).
    pub stats: IoStats,
}

#[derive(Debug, Clone, Copy)]
enum AttrState {
    Free,
    Tax(TaxNode),
}

struct Task {
    file: SimFile,
    states: Vec<AttrState>,
    observed: Vec<CodeRange>,
}

/// Run external Mondrian on `md`, charging logical I/O to `counter`.
pub fn mondrian_external(
    md: &Microdata,
    cfg: &MondrianConfig,
    page: PageConfig,
    pool: &BufferPool,
    counter: &IoCounter,
) -> Result<ExternalMondrianOutput, GenError> {
    let d = md.qi_count();
    if cfg.methods.len() != d {
        return Err(GenError::MethodMismatch {
            got: cfg.methods.len(),
            expected: d,
        });
    }
    check_eligibility(md, cfg.l)?;
    let before = counter.stats();
    let lambda = md.sensitive_domain_size() as usize;
    let codec = U32RowCodec::new(d + 1);
    let out_codec = U32RowCodec::new(2 * d + 1);

    let input = microdata_to_file(md, page)?;

    let mut table = SimFile::new();
    let mut groups = 0usize;

    if md.is_empty() {
        return Ok(ExternalMondrianOutput {
            table,
            groups,
            stats: counter.stats().since(&before),
        });
    }
    if md.len() < cfg.l {
        return Err(GenError::Core(anatomy_core::CoreError::NotEligible {
            max_count: 1,
            n: md.len(),
            l: cfg.l,
        }));
    }

    // Root statistics pass: observed range of every attribute.
    let root_observed = {
        let reader = SeqReader::open(&input, codec, pool, counter.clone())?;
        let mut lo = vec![u32::MAX; d];
        let mut hi = vec![0u32; d];
        for rec in reader {
            let rec = rec.map_err(GenError::Storage)?;
            for i in 0..d {
                lo[i] = lo[i].min(rec[i]);
                hi[i] = hi[i].max(rec[i]);
            }
        }
        (0..d)
            .map(|i| CodeRange::new(lo[i], hi[i]))
            .collect::<Vec<_>>()
    };
    let root_states: Vec<AttrState> = cfg
        .methods
        .iter()
        .map(|m| match m {
            GenMethod::FreeInterval => AttrState::Free,
            GenMethod::Taxonomy(t) => AttrState::Tax(t.root()),
        })
        .collect();

    let mut stack = vec![Task {
        file: input,
        states: root_states,
        observed: root_observed,
    }];

    {
        let mut out = SeqWriter::open(&mut table, out_codec, page, pool, counter.clone())?;

        while let Some(task) = stack.pop() {
            // Attribute order: widest normalized extent first.
            let mut order: Vec<usize> = (0..d).collect();
            let width = |i: usize| -> f64 {
                let extent = match task.states[i] {
                    AttrState::Free => task.observed[i].len(),
                    AttrState::Tax(node) => {
                        if node.range.len() == 1 {
                            1
                        } else {
                            task.observed[i].len()
                        }
                    }
                };
                (extent - 1) as f64 / md.qi_domain_size(i) as f64
            };
            order.sort_by(|&a, &b| width(b).partial_cmp(&width(a)).unwrap().then(a.cmp(&b)));

            let n_task = task.file.record_count();
            let mut split_done = false;

            for &i in &order {
                // Statistics pass for attribute i: joint (value, sensitive)
                // counts over the observed range.
                let range = task.observed[i];
                let span = range.len() as usize;
                if span == 1 {
                    continue;
                }
                let joint = {
                    let reader = SeqReader::open(&task.file, codec, pool, counter.clone())?;
                    let mut joint = vec![0u32; span * lambda];
                    for rec in reader {
                        let rec = rec.map_err(GenError::Storage)?;
                        let off = (rec[i] - range.lo) as usize;
                        joint[off * lambda + rec[d] as usize] += 1;
                    }
                    joint
                };
                let marginal = |off: usize| -> usize {
                    joint[off * lambda..(off + 1) * lambda]
                        .iter()
                        .map(|&c| c as usize)
                        .sum()
                };

                // Candidate cut points: (inclusive upper offsets of each
                // side boundary) for Free it's the single median cut; for
                // Tax the child ranges.
                let cuts: Option<Vec<CodeRange>> = match task.states[i] {
                    AttrState::Free => {
                        let half = n_task.div_ceil(2);
                        let mut cum = 0usize;
                        let mut split = range.hi;
                        for off in 0..span {
                            cum += marginal(off);
                            if cum >= half {
                                split = range.lo + off as u32;
                                break;
                            }
                        }
                        if split >= range.hi {
                            let mut fb = None;
                            for off in (0..span - 1).rev() {
                                if marginal(off) > 0 {
                                    fb = Some(range.lo + off as u32);
                                    break;
                                }
                            }
                            match fb {
                                Some(s) => split = s,
                                None => {
                                    continue;
                                }
                            }
                        }
                        Some(vec![
                            CodeRange::new(range.lo, split),
                            CodeRange::new(split + 1, range.hi),
                        ])
                    }
                    AttrState::Tax(node) => {
                        let tax = match cfg.methods[i] {
                            GenMethod::Taxonomy(t) => t,
                            GenMethod::FreeInterval => unreachable!(),
                        };
                        let node =
                            tax.lca(range.lo.max(node.range.lo), range.hi.min(node.range.hi));
                        let kids = tax.children(node);
                        if kids.is_empty() {
                            None
                        } else {
                            Some(kids.iter().map(|k| k.range).collect())
                        }
                    }
                };
                let Some(cuts) = cuts else { continue };

                // Feasibility from the joint counts: every non-empty side
                // needs size >= l and max sensitive count * l <= size.
                let mut sides: Vec<(CodeRange, usize)> = Vec::new();
                let mut feasible = true;
                let mut nonempty_sides = 0usize;
                for cut in &cuts {
                    if cut.lo > range.hi || cut.hi < range.lo {
                        // Taxonomy children may lie entirely outside the
                        // observed range.
                        continue;
                    }
                    let lo_off = cut.lo.saturating_sub(range.lo) as usize;
                    let hi_off = (cut.hi.min(range.hi) - range.lo) as usize;
                    let mut size = 0usize;
                    let mut sens = vec![0usize; lambda];
                    for off in lo_off..=hi_off {
                        for s in 0..lambda {
                            let c = joint[off * lambda + s] as usize;
                            size += c;
                            sens[s] += c;
                        }
                    }
                    if size == 0 {
                        continue;
                    }
                    nonempty_sides += 1;
                    let max_sens = sens.iter().copied().max().unwrap_or(0);
                    if size < cfg.l || max_sens * cfg.l > size {
                        feasible = false;
                        break;
                    }
                    sides.push((*cut, size));
                }
                if !feasible || nonempty_sides < 2 {
                    continue;
                }

                // Split pass: route records to child files, tracking each
                // child's observed ranges.
                let k = sides.len();
                let mut child_files: Vec<SimFile> = (0..k).map(|_| SimFile::new()).collect();
                let mut child_lo = vec![vec![u32::MAX; d]; k];
                let mut child_hi = vec![vec![0u32; d]; k];
                {
                    let mut writers: Vec<SeqWriter<'_, U32RowCodec>> = Vec::with_capacity(k);
                    for f in child_files.iter_mut() {
                        writers.push(SeqWriter::open(f, codec, page, pool, counter.clone())?);
                    }
                    let reader = SeqReader::open(&task.file, codec, pool, counter.clone())?;
                    for rec in reader {
                        let rec = rec.map_err(GenError::Storage)?;
                        let v = rec[i];
                        let c = sides
                            .iter()
                            .position(|(cut, _)| cut.contains(v))
                            .expect("cuts cover the observed range");
                        for a in 0..d {
                            child_lo[c][a] = child_lo[c][a].min(rec[a]);
                            child_hi[c][a] = child_hi[c][a].max(rec[a]);
                        }
                        writers[c].push(&rec).map_err(GenError::Storage)?;
                    }
                    for w in writers {
                        w.finish().map_err(GenError::Storage)?;
                    }
                }
                for (c, file) in child_files.into_iter().enumerate() {
                    let mut states = task.states.clone();
                    if let AttrState::Tax(_) = states[i] {
                        let tax = match cfg.methods[i] {
                            GenMethod::Taxonomy(t) => t,
                            GenMethod::FreeInterval => unreachable!(),
                        };
                        states[i] = AttrState::Tax(tax.lca(child_lo[c][i], child_hi[c][i]));
                    }
                    let observed = (0..d)
                        .map(|a| CodeRange::new(child_lo[c][a], child_hi[c][a]))
                        .collect();
                    stack.push(Task {
                        file,
                        states,
                        observed,
                    });
                }
                split_done = true;
                break;
            }

            if split_done {
                continue;
            }

            // Leaf: one output pass writing generalized records.
            groups += 1;
            let ranges: Vec<CodeRange> = (0..d)
                .map(|i| match cfg.methods[i] {
                    GenMethod::FreeInterval => task.observed[i],
                    GenMethod::Taxonomy(t) => t.lca(task.observed[i].lo, task.observed[i].hi).range,
                })
                .collect();
            let reader = SeqReader::open(&task.file, codec, pool, counter.clone())?;
            let mut out_rec = vec![0u32; 2 * d + 1];
            for rec in reader {
                let rec = rec.map_err(GenError::Storage)?;
                for i in 0..d {
                    out_rec[2 * i] = ranges[i].lo;
                    out_rec[2 * i + 1] = ranges[i].hi;
                }
                out_rec[2 * d] = rec[d];
                out.push(&out_rec).map_err(GenError::Storage)?;
            }
        }
        out.finish().map_err(GenError::Storage)?;
    }

    Ok(ExternalMondrianOutput {
        table,
        groups,
        stats: counter.stats().since(&before),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mondrian::mondrian;
    use anatomy_tables::{Attribute, Schema, TableBuilder};

    fn md_linear(n: usize, s_dom: u32) -> Microdata {
        let schema = Schema::new(vec![
            Attribute::numerical("A", n as u32),
            Attribute::categorical("S", s_dom),
        ])
        .unwrap();
        let mut b = TableBuilder::new(schema);
        for i in 0..n as u32 {
            b.push_row(&[i, i % s_dom]).unwrap();
        }
        Microdata::with_leading_qi(b.finish(), 1).unwrap()
    }

    fn read_rows(f: &SimFile, arity: usize) -> Vec<Vec<u32>> {
        let pool = BufferPool::unbounded();
        SeqReader::open(f, U32RowCodec::new(arity), &pool, IoCounter::new())
            .unwrap()
            .map(|r| r.unwrap())
            .collect()
    }

    #[test]
    fn external_matches_in_memory_group_count() {
        let md = md_linear(64, 4);
        let cfg = MondrianConfig::all_free(2, 1);
        let page = PageConfig::with_page_size(64);
        let pool = BufferPool::new(50);
        let counter = IoCounter::new();
        let out = mondrian_external(&md, &cfg, page, &pool, &counter).unwrap();
        let (p, _t) = mondrian(&md, &cfg).unwrap();
        assert_eq!(out.groups, p.group_count());
        // Every input tuple appears in the output.
        let rows = read_rows(&out.table, 3);
        assert_eq!(rows.len(), 64);
        // Output records are valid intervals containing... at least
        // lo <= hi.
        for r in &rows {
            assert!(r[0] <= r[1]);
        }
        assert_eq!(pool.in_use(), 0);
    }

    #[test]
    fn output_intervals_cover_and_are_l_diverse() {
        let md = md_linear(60, 3);
        let cfg = MondrianConfig::all_free(3, 1);
        let page = PageConfig::with_page_size(128);
        let pool = BufferPool::new(50);
        let out = mondrian_external(&md, &cfg, page, &pool, &IoCounter::new()).unwrap();
        let rows = read_rows(&out.table, 3);
        // Group rows by interval; check diversity per group.
        use std::collections::HashMap;
        let mut by_group: HashMap<(u32, u32), Vec<u32>> = HashMap::new();
        for r in &rows {
            by_group.entry((r[0], r[1])).or_default().push(r[2]);
        }
        assert_eq!(by_group.len(), out.groups);
        for ((lo, hi), sens) in by_group {
            assert!(sens.len() >= 3, "group [{lo},{hi}] too small");
            let mut counts = [0usize; 3];
            for s in &sens {
                counts[*s as usize] += 1;
            }
            let max = counts.iter().max().unwrap();
            assert!(max * 3 <= sens.len());
        }
    }

    #[test]
    fn io_cost_is_superlinear() {
        // Generalization's I/O per tuple grows with n (depth factor),
        // unlike Anatomize.
        let page = PageConfig::with_page_size(256);
        let cost = |n: usize| {
            let md = md_linear(n, 4);
            let cfg = MondrianConfig::all_free(2, 1);
            let pool = BufferPool::new(50);
            let counter = IoCounter::new();
            let out = mondrian_external(&md, &cfg, page, &pool, &counter).unwrap();
            out.stats.total()
        };
        let c1 = cost(1000);
        let c2 = cost(4000);
        let ratio = c2 as f64 / c1 as f64;
        assert!(
            ratio > 4.0,
            "expected superlinear scaling, got ratio {ratio} ({c1} -> {c2})"
        );
    }

    #[test]
    fn taxonomy_methods_work_externally() {
        let schema = Schema::new(vec![
            Attribute::numerical("Age", 50),
            Attribute::categorical("Cat", 9),
            Attribute::categorical("S", 3),
        ])
        .unwrap();
        let mut b = TableBuilder::new(schema);
        for i in 0..90u32 {
            b.push_row(&[i % 50, i % 9, i % 3]).unwrap();
        }
        let md = Microdata::with_leading_qi(b.finish(), 2).unwrap();
        let cfg = MondrianConfig {
            l: 3,
            methods: vec![
                GenMethod::FreeInterval,
                GenMethod::Taxonomy(crate::taxonomy::Taxonomy::new(9, 3).unwrap()),
            ],
        };
        let page = PageConfig::with_page_size(128);
        let pool = BufferPool::new(50);
        let out = mondrian_external(&md, &cfg, page, &pool, &IoCounter::new()).unwrap();
        assert!(out.groups >= 2);
        let rows = read_rows(&out.table, 5);
        assert_eq!(rows.len(), 90);
    }

    #[test]
    fn rejects_ineligible_and_empty_is_ok() {
        let page = PageConfig::with_page_size(128);
        let pool = BufferPool::new(50);
        let schema = Schema::new(vec![
            Attribute::numerical("A", 10),
            Attribute::categorical("S", 5),
        ])
        .unwrap();
        let mut b = TableBuilder::new(schema.clone());
        for i in 0..10u32 {
            b.push_row(&[i, 0]).unwrap();
        }
        let md = Microdata::with_leading_qi(b.finish(), 1).unwrap();
        let cfg = MondrianConfig::all_free(2, 1);
        assert!(mondrian_external(&md, &cfg, page, &pool, &IoCounter::new()).is_err());

        let empty = Microdata::with_leading_qi(TableBuilder::new(schema).finish(), 1).unwrap();
        let out = mondrian_external(&empty, &cfg, page, &pool, &IoCounter::new()).unwrap();
        assert_eq!(out.groups, 0);
        assert!(out.table.is_empty());
    }
    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(16))]
            /// The external driver always produces exactly the same group
            /// count as the in-memory recursion (they share the split
            /// rules, so any divergence is a bug in the file plumbing).
            #[test]
            fn external_agrees_with_in_memory(
                vals in proptest::collection::vec((0u32..30, 0u32..5), 10..120),
                l in 2usize..4,
            ) {
                let schema = Schema::new(vec![
                    Attribute::numerical("A", 30),
                    Attribute::categorical("S", 5),
                ]).unwrap();
                let mut b = TableBuilder::new(schema);
                for &(a, s) in &vals {
                    b.push_row(&[a, s]).unwrap();
                }
                let md = Microdata::with_leading_qi(b.finish(), 1).unwrap();
                let cfg = MondrianConfig::all_free(l, 1);
                let page = PageConfig::with_page_size(64);
                let pool = BufferPool::new(50);
                match (mondrian(&md, &cfg), mondrian_external(&md, &cfg, page, &pool, &IoCounter::new())) {
                    (Ok((p, _)), Ok(out)) => {
                        prop_assert_eq!(out.groups, p.group_count());
                        let rows = read_rows(&out.table, 3);
                        prop_assert_eq!(rows.len(), md.len());
                    }
                    (Err(_), Err(_)) => {}
                    (a, b) => prop_assert!(false, "divergent outcomes: {:?} vs {:?}", a.is_ok(), b.is_ok()),
                }
            }
        }
    }
}
