//! Error type for the generalization baseline.

use std::fmt;

/// Errors produced by the generalization baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GenError {
    /// A taxonomy was configured inconsistently (e.g. height too small for
    /// the domain).
    InvalidTaxonomy(String),
    /// The per-attribute method list does not match the microdata's QI
    /// attributes.
    MethodMismatch {
        /// Methods supplied.
        got: usize,
        /// QI attributes in the microdata.
        expected: usize,
    },
    /// An error from the anatomy core (eligibility, invalid `l`, ...).
    Core(anatomy_core::CoreError),
    /// An error from the tables substrate.
    Tables(anatomy_tables::TablesError),
    /// An error from the storage substrate.
    Storage(anatomy_storage::StorageError),
}

impl fmt::Display for GenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenError::InvalidTaxonomy(msg) => write!(f, "invalid taxonomy: {msg}"),
            GenError::MethodMismatch { got, expected } => write!(
                f,
                "got {got} generalization methods for {expected} QI attributes"
            ),
            // Wrapper variants name the layer they crossed, matching
            // `CoreError`'s style, so a rendered chain reads
            // "core error: ..." even when the source chain is elided.
            GenError::Core(e) => write!(f, "core error: {e}"),
            GenError::Tables(e) => write!(f, "tables error: {e}"),
            GenError::Storage(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for GenError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GenError::Core(e) => Some(e),
            GenError::Tables(e) => Some(e),
            GenError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<anatomy_core::CoreError> for GenError {
    fn from(e: anatomy_core::CoreError) -> Self {
        GenError::Core(e)
    }
}

impl From<anatomy_tables::TablesError> for GenError {
    fn from(e: anatomy_tables::TablesError) -> Self {
        GenError::Tables(e)
    }
}

impl From<anatomy_storage::StorageError> for GenError {
    fn from(e: anatomy_storage::StorageError) -> Self {
        GenError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error as _;
        let e = GenError::MethodMismatch {
            got: 2,
            expected: 5,
        };
        assert!(e.to_string().contains('2') && e.to_string().contains('5'));
        assert!(e.source().is_none());
        let e = GenError::Core(anatomy_core::CoreError::InvalidL(1));
        assert!(e.source().is_some());
    }
}
