//! Incremental (append-only) anatomization.
//!
//! The paper publishes one static snapshot. Real registries grow, and
//! re-running `Anatomize` on every insertion would re-shuffle old tuples
//! into new groups — each re-publication a fresh disclosure. This module
//! implements the safe append-only alternative: buffer arriving tuples per
//! sensitive value and, whenever `l` distinct values are buffered, emit one
//! *new* QI-group drawn from the `l` largest buffers (exactly the paper's
//! group-creation step, run online).
//!
//! Privacy: every published group has `l` tuples with pairwise-distinct
//! sensitive values, so Corollary 1's `1/l` bound holds for each published
//! tuple, and already-published groups are never touched — an adversary
//! diffing successive releases sees only whole new groups, never a changed
//! association. Tuples still in the buffer are not published at all.
//! (Cross-release *deletion* or re-insertion attacks are the province of
//! m-invariance, a successor technique; this module deliberately supports
//! inserts only.)
//!
//! Utility: published groups always have exactly `l` singleton values —
//! per-tuple reconstruction error `1 − 1/l`, the per-group optimum of
//! Theorem 2. The price of being online is the buffer: up to `λ − 1`
//! tuples (one per other sensitive value) can be withheld indefinitely,
//! whereas the offline algorithm leaves at most `l − 1` unpublished.

use crate::error::CoreError;
use crate::partition::GroupId;
use crate::published::{AnatomizedTables, StRecord};
use anatomy_tables::{Schema, TableBuilder, Value};
use std::collections::VecDeque;

/// An append-only anatomized publication.
#[derive(Debug, Clone)]
pub struct IncrementalPublisher {
    qi_schema: Schema,
    l: usize,
    sensitive_domain: u32,
    /// Published QIT rows (QI codes only), parallel to `group_ids`.
    qit_rows: Vec<Vec<u32>>,
    group_ids: Vec<GroupId>,
    /// Published ST records, sorted by (group, value) as emitted.
    st: Vec<StRecord>,
    groups: usize,
    /// Pending tuples per sensitive value, oldest first (emission drains
    /// FIFO so no arrival is starved behind newer ones).
    buffer: Vec<VecDeque<Vec<u32>>>,
    buffered: usize,
}

impl IncrementalPublisher {
    /// Start an empty publication with the given QI schema, sensitive
    /// domain size, and diversity parameter.
    pub fn new(qi_schema: Schema, sensitive_domain: u32, l: usize) -> Result<Self, CoreError> {
        if l < 2 {
            return Err(CoreError::InvalidL(l));
        }
        if (sensitive_domain as usize) < l {
            // Fewer than l possible values: no group can ever form.
            return Err(CoreError::DomainTooSmall {
                domain: sensitive_domain,
                l,
            });
        }
        Ok(IncrementalPublisher {
            qi_schema,
            l,
            sensitive_domain,
            qit_rows: Vec::new(),
            group_ids: Vec::new(),
            st: Vec::new(),
            groups: 0,
            buffer: vec![VecDeque::new(); sensitive_domain as usize],
            buffered: 0,
        })
    }

    /// Diversity parameter.
    pub fn l(&self) -> usize {
        self.l
    }

    /// Tuples currently buffered (not yet published).
    pub fn pending(&self) -> usize {
        self.buffered
    }

    /// Tuples already published.
    pub fn published_len(&self) -> usize {
        self.qit_rows.len()
    }

    /// QI-groups published so far.
    pub fn group_count(&self) -> usize {
        self.groups
    }

    /// Insert one tuple. Returns the id of the group published as a
    /// consequence, if the insertion completed one.
    pub fn insert(&mut self, qi: &[u32], sensitive: Value) -> Result<Option<GroupId>, CoreError> {
        if qi.len() != self.qi_schema.width() {
            return Err(CoreError::Tables(
                anatomy_tables::TablesError::ArityMismatch {
                    expected: self.qi_schema.width(),
                    got: qi.len(),
                },
            ));
        }
        for (i, &c) in qi.iter().enumerate() {
            self.qi_schema
                .attribute(i)
                .map_err(CoreError::Tables)?
                .check(c)
                .map_err(CoreError::Tables)?;
        }
        if sensitive.code() >= self.sensitive_domain {
            return Err(CoreError::Tables(
                anatomy_tables::TablesError::ValueOutOfDomain {
                    attribute: "sensitive".into(),
                    code: sensitive.code(),
                    domain_size: self.sensitive_domain,
                },
            ));
        }
        self.buffer[sensitive.index()].push_back(qi.to_vec());
        self.buffered += 1;
        Ok(self.try_emit())
    }

    /// If `l` distinct sensitive values are buffered, publish one group
    /// from the `l` largest buffers (the paper's Line 5 rule keeps the
    /// buffer balanced, exactly as it keeps buckets balanced offline),
    /// taking each chosen value's *oldest* buffered tuple so that, once a
    /// value is selected, arrival order is respected — a newer tuple can
    /// never starve an older one of the same value.
    fn try_emit(&mut self) -> Option<GroupId> {
        let mut nonempty: Vec<usize> = (0..self.buffer.len())
            .filter(|&v| !self.buffer[v].is_empty())
            .collect();
        if nonempty.len() < self.l {
            return None;
        }
        nonempty.sort_by_key(|&v| std::cmp::Reverse(self.buffer[v].len()));
        let gid = self.groups as GroupId;
        let mut values: Vec<usize> = nonempty[..self.l].to_vec();
        values.sort_unstable(); // ST order: ascending value
        for v in values {
            let qi = self.buffer[v].pop_front().expect("non-empty buffer");
            self.qit_rows.push(qi);
            self.group_ids.push(gid);
            self.st.push(StRecord {
                group: gid,
                value: Value(v as u32),
                count: 1,
            });
            self.buffered -= 1;
        }
        self.groups += 1;
        Some(gid)
    }

    /// Materialize the current publication as validated
    /// [`AnatomizedTables`] (buffered tuples are excluded).
    pub fn published(&self) -> Result<AnatomizedTables, CoreError> {
        let mut b = TableBuilder::with_capacity(self.qi_schema.clone(), self.qit_rows.len());
        for row in &self.qit_rows {
            b.push_row(row).map_err(CoreError::Tables)?;
        }
        AnatomizedTables::from_parts(b.finish(), self.group_ids.clone(), self.st.clone(), self.l)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anatomy_tables::Attribute;

    fn schema() -> Schema {
        Schema::new(vec![Attribute::numerical("Age", 1000)]).unwrap()
    }

    #[test]
    fn groups_form_once_l_values_arrive() {
        let mut p = IncrementalPublisher::new(schema(), 5, 3).unwrap();
        assert_eq!(p.insert(&[1], Value(0)).unwrap(), None);
        assert_eq!(p.insert(&[2], Value(0)).unwrap(), None); // same value: no group
        assert_eq!(p.insert(&[3], Value(1)).unwrap(), None);
        let gid = p.insert(&[4], Value(2)).unwrap();
        assert_eq!(gid, Some(0));
        assert_eq!(p.published_len(), 3);
        assert_eq!(p.pending(), 1); // the duplicate value-0 tuple waits
    }

    #[test]
    fn published_tables_are_l_diverse_and_stable() {
        let mut p = IncrementalPublisher::new(schema(), 6, 3).unwrap();
        let mut snapshots = Vec::new();
        for i in 0..60u32 {
            p.insert(&[i], Value(i % 5)).unwrap();
            if i % 10 == 9 {
                snapshots.push(p.published().unwrap());
            }
        }
        // Every snapshot validates (from_parts checks Definition 2).
        for t in &snapshots {
            assert_eq!(t.l(), 3);
        }
        // Append-only: each snapshot is a prefix of the next.
        for w in snapshots.windows(2) {
            let (a, b) = (&w[0], &w[1]);
            assert!(a.len() <= b.len());
            assert_eq!(&b.group_ids()[..a.len()], a.group_ids());
            assert_eq!(&b.st_records()[..a.st_records().len()], a.st_records());
            for i in 0..a.qi_count() {
                assert_eq!(&b.qi_codes(i)[..a.len()], a.qi_codes(i));
            }
        }
    }

    #[test]
    fn buffer_is_bounded_by_distinct_values() {
        // Round-robin over 6 values with l = 3: at most l-1 = 2 values can
        // be pending... in the online setting up to λ-1 = 5, but balanced
        // arrivals keep it small.
        let mut p = IncrementalPublisher::new(schema(), 6, 3).unwrap();
        for i in 0..600u32 {
            p.insert(&[i % 1000], Value(i % 6)).unwrap();
            assert!(p.pending() < 6, "pending {} at i={i}", p.pending());
        }
        assert!(p.group_count() >= 190);
    }

    #[test]
    fn skewed_stream_withholds_the_heavy_value() {
        let mut p = IncrementalPublisher::new(schema(), 8, 4).unwrap();
        // 90% of arrivals share value 0: groups form only when three other
        // values are available; the value-0 backlog grows (the documented
        // cost of online publication), but everything published stays
        // 4-diverse.
        for i in 0..100u32 {
            let v = if i % 10 == 0 { 1 + (i / 10) % 7 } else { 0 };
            p.insert(&[i], Value(v)).unwrap();
        }
        let t = p.published().unwrap();
        assert!(t.group_count() >= 1);
        for j in 0..t.group_count() as u32 {
            assert_eq!(t.group_size(j), 4);
            assert!(t.st_of(j).iter().all(|r| r.count == 1));
        }
        assert!(p.pending() > 50, "heavy value must be withheld");
    }

    #[test]
    fn buffered_tuples_of_one_value_emit_oldest_first() {
        // Two tuples of value 0 arrive before value 1 completes a group:
        // the group must carry value 0's FIRST arrival ([10]), and the
        // next group its second ([11]). The pre-fix LIFO buffer emitted
        // [11] first, starving [10] behind every newer arrival.
        let mut p = IncrementalPublisher::new(schema(), 5, 2).unwrap();
        assert_eq!(p.insert(&[10], Value(0)).unwrap(), None);
        assert_eq!(p.insert(&[11], Value(0)).unwrap(), None);
        assert_eq!(p.insert(&[20], Value(1)).unwrap(), Some(0));
        let t = p.published().unwrap();
        // Group 0 in ST value order: value 0's row then value 1's row.
        assert_eq!(&t.qi_codes(0)[..2], &[10, 20]);

        assert_eq!(p.insert(&[21], Value(1)).unwrap(), Some(1));
        let t = p.published().unwrap();
        assert_eq!(t.qi_codes(0), &[10, 20, 11, 21]);
        assert_eq!(p.pending(), 0);
    }

    #[test]
    fn no_arrival_is_starved_under_a_hot_value() {
        // Value 0 stays hot forever; its oldest tuple must still ship in
        // the very next group rather than waiting behind the backlog.
        let mut p = IncrementalPublisher::new(schema(), 4, 2).unwrap();
        for i in 0..10u32 {
            p.insert(&[i], Value(0)).unwrap();
        }
        p.insert(&[100], Value(1)).unwrap();
        let t = p.published().unwrap();
        assert_eq!(&t.qi_codes(0)[..2], &[0, 100], "oldest hot tuple first");
    }

    #[test]
    fn validation_of_inputs() {
        assert!(matches!(
            IncrementalPublisher::new(schema(), 5, 1),
            Err(CoreError::InvalidL(1))
        ));
        // A 2-value domain can never host a 3-diverse group; the error
        // names the actual domain size instead of a fabricated count.
        assert!(matches!(
            IncrementalPublisher::new(schema(), 2, 3),
            Err(CoreError::DomainTooSmall { domain: 2, l: 3 })
        ));
        let mut p = IncrementalPublisher::new(schema(), 5, 2).unwrap();
        assert!(p.insert(&[1, 2], Value(0)).is_err()); // arity
        assert!(p.insert(&[5000], Value(0)).is_err()); // QI domain
        assert!(p.insert(&[1], Value(9)).is_err()); // sensitive domain
        assert_eq!(p.pending(), 0, "rejected inserts must not buffer");
    }

    #[test]
    fn empty_publication_is_valid() {
        let p = IncrementalPublisher::new(schema(), 5, 2).unwrap();
        let t = p.published().unwrap();
        assert!(t.is_empty());
        assert_eq!(t.group_count(), 0);
    }
}
