//! Extension: anatomy with multiple sensitive attributes.
//!
//! The paper's Section 7 names this as future work: "we focused on the case
//! where there is a single sensitive attribute. Extending our technique to
//! multiple sensitive attributes is an interesting topic."
//!
//! The natural generalization implemented here publishes one ST per
//! sensitive attribute over a *common* partition, and requires every
//! QI-group to hold pairwise-distinct values **in every sensitive
//! attribute**. Then, for each attribute `k` separately, the argument of
//! Lemma 1 / Theorem 1 applies verbatim: the adversary's probability of
//! pinning attribute `k` of any individual is at most `1/l`.
//!
//! Finding such a partition is a constrained matching problem; the greedy
//! strategy below mirrors `Anatomize` — buckets are keyed by the full
//! sensitive *vector*, and each group takes tuples from the `l` largest
//! buckets that are pairwise compatible (differ in every coordinate). The
//! greedy can fail on inputs where an exhaustive search would succeed; it
//! reports [`CoreError::MultiSensitiveInfeasible`] rather than looping. An
//! eligibility-style *necessary* condition (per-attribute frequency bound)
//! is checked up front to give early, precise errors.

use crate::error::CoreError;
use crate::partition::Partition;
use anatomy_tables::stats::Histogram;
use anatomy_tables::{Table, TablesError, Value};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};
use std::collections::HashMap;

/// Microdata with several sensitive attributes.
#[derive(Debug, Clone)]
pub struct MultiSensitiveMicrodata {
    table: Table,
    qi: Vec<usize>,
    sensitive: Vec<usize>,
}

impl MultiSensitiveMicrodata {
    /// Designate QI and sensitive columns (all disjoint, in range).
    pub fn new(table: Table, qi: Vec<usize>, sensitive: Vec<usize>) -> Result<Self, CoreError> {
        if sensitive.is_empty() {
            return Err(CoreError::Tables(TablesError::InvalidMicrodata(
                "need at least one sensitive attribute".into(),
            )));
        }
        let width = table.width();
        let mut seen = vec![false; width];
        for &c in qi.iter().chain(&sensitive) {
            if c >= width {
                return Err(CoreError::Tables(TablesError::InvalidMicrodata(format!(
                    "column {c} out of range for width {width}"
                ))));
            }
            if seen[c] {
                return Err(CoreError::Tables(TablesError::InvalidMicrodata(format!(
                    "column {c} designated twice"
                ))));
            }
            seen[c] = true;
        }
        if qi.is_empty() {
            return Err(CoreError::Tables(TablesError::InvalidMicrodata(
                "need at least one QI attribute".into(),
            )));
        }
        Ok(MultiSensitiveMicrodata {
            table,
            qi,
            sensitive,
        })
    }

    /// The underlying table.
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether there are no tuples.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Number of sensitive attributes.
    pub fn sensitive_count(&self) -> usize {
        self.sensitive.len()
    }

    /// Table column indices of the QI attributes.
    pub fn qi_columns(&self) -> &[usize] {
        &self.qi
    }

    /// Table column indices of the sensitive attributes.
    pub fn sensitive_columns(&self) -> &[usize] {
        &self.sensitive
    }

    /// The sensitive vector of row `r`.
    fn sensitive_vector(&self, r: usize) -> Vec<u32> {
        self.sensitive
            .iter()
            .map(|&c| self.table.value(r, c).code())
            .collect()
    }
}

/// Result of [`anatomize_multi`]: the partition plus one per-attribute ST
/// (per group, per attribute, the list of (value, count) pairs — counts are
/// always 1 by construction).
#[derive(Debug, Clone)]
pub struct MultiAnatomized {
    /// The common l-diverse-per-attribute partition.
    pub partition: Partition,
    /// `st[k]` is the ST of sensitive attribute `k`: records
    /// `(group, value, count)` sorted by group.
    pub st: Vec<Vec<(u32, Value, u32)>>,
}

/// Necessary eligibility condition, per attribute: no value of any
/// sensitive attribute may occur more than `n/l` times.
pub fn check_multi_eligibility(md: &MultiSensitiveMicrodata, l: usize) -> Result<(), CoreError> {
    if l < 2 {
        return Err(CoreError::InvalidL(l));
    }
    let n = md.len();
    for &c in &md.sensitive {
        let domain = md
            .table
            .schema()
            .attribute(c)
            .expect("validated at construction")
            .domain_size();
        let hist = Histogram::of_column(md.table.column(c), domain);
        if let Some((_, max_count)) = hist.max() {
            if max_count.saturating_mul(l) > n {
                return Err(CoreError::NotEligible { max_count, n, l });
            }
        }
    }
    Ok(())
}

/// Greedy multi-sensitive anatomization: groups of `l` tuples pairwise
/// distinct in every sensitive attribute, residues assigned to compatible
/// groups.
///
/// The greedy is randomized; on an infeasible draw it retries with fresh
/// tie-breaking up to a fixed number of times before reporting
/// [`CoreError::MultiSensitiveInfeasible`].
pub fn anatomize_multi(
    md: &MultiSensitiveMicrodata,
    l: usize,
    seed: u64,
) -> Result<MultiAnatomized, CoreError> {
    const ATTEMPTS: u64 = 16;
    let mut last = None;
    for attempt in 0..ATTEMPTS {
        match anatomize_multi_once(md, l, seed.wrapping_add(attempt.wrapping_mul(0x9E37_79B9))) {
            Err(e @ CoreError::MultiSensitiveInfeasible(_)) => last = Some(e),
            other => return other,
        }
    }
    Err(last.expect("loop ran at least once"))
}

/// One randomized greedy attempt (see [`anatomize_multi`]).
fn anatomize_multi_once(
    md: &MultiSensitiveMicrodata,
    l: usize,
    seed: u64,
) -> Result<MultiAnatomized, CoreError> {
    check_multi_eligibility(md, l)?;
    let n = md.len();
    if n == 0 {
        return Ok(MultiAnatomized {
            partition: Partition::new(vec![], 0)?,
            st: vec![Vec::new(); md.sensitive_count()],
        });
    }
    let mut rng = StdRng::seed_from_u64(seed);

    // Buckets keyed by the sensitive vector.
    let mut bucket_map: HashMap<Vec<u32>, Vec<u32>> = HashMap::new();
    for r in 0..n {
        bucket_map
            .entry(md.sensitive_vector(r))
            .or_default()
            .push(r as u32);
    }
    let mut keys: Vec<Vec<u32>> = bucket_map.keys().cloned().collect();
    keys.sort_unstable(); // determinism
    let mut buckets: Vec<(Vec<u32>, Vec<u32>)> = keys
        .into_iter()
        .map(|k| {
            let mut rows = bucket_map.remove(&k).expect("key from map");
            rows.shuffle(&mut rng);
            (k, rows)
        })
        .collect();

    let compatible = |a: &[u32], b: &[u32]| a.iter().zip(b).all(|(x, y)| x != y);

    let mut groups: Vec<Vec<u32>> = Vec::new();
    // Per group, the sensitive vectors of its members (for residue checks).
    let mut group_vectors: Vec<Vec<Vec<u32>>> = Vec::new();

    loop {
        // Greedy selection: largest bucket first, then the largest bucket
        // compatible with everything selected so far.
        buckets.retain(|(_, rows)| !rows.is_empty());
        if buckets.iter().map(|(_, r)| r.len()).sum::<usize>() < l {
            break;
        }
        // Shuffle before the stable sort so buckets of equal size are tried
        // in random order: deterministic tie-breaking can paint the greedy
        // into a corner on highly structured data.
        buckets.shuffle(&mut rng);
        buckets.sort_by_key(|b| std::cmp::Reverse(b.1.len()));
        let mut chosen: Vec<usize> = Vec::with_capacity(l);
        for (i, (key, _)) in buckets.iter().enumerate() {
            if chosen.iter().all(|&j| compatible(key, &buckets[j].0)) {
                chosen.push(i);
                if chosen.len() == l {
                    break;
                }
            }
        }
        if chosen.len() < l {
            // No l pairwise-compatible buckets remain: whatever is left is
            // residue material if total < l, otherwise the greedy is stuck.
            let left: usize = buckets.iter().map(|(_, r)| r.len()).sum();
            if left >= l {
                return Err(CoreError::MultiSensitiveInfeasible(format!(
                    "{left} tuples remain but no {l} pairwise-compatible sensitive vectors exist"
                )));
            }
            break;
        }
        let mut group = Vec::with_capacity(l);
        let mut vectors = Vec::with_capacity(l);
        for &i in &chosen {
            let (key, rows) = &mut buckets[i];
            group.push(rows.pop().expect("non-empty bucket"));
            vectors.push(key.clone());
        }
        groups.push(group);
        group_vectors.push(vectors);
    }

    // Residues.
    for (key, rows) in buckets {
        for row in rows {
            let candidates: Vec<usize> = group_vectors
                .iter()
                .enumerate()
                .filter(|(_, vecs)| vecs.iter().all(|v| compatible(v, &key)))
                .map(|(j, _)| j)
                .collect();
            if candidates.is_empty() {
                return Err(CoreError::MultiSensitiveInfeasible(format!(
                    "residue tuple with sensitive vector {key:?} fits no group"
                )));
            }
            let j = candidates[rng.random_range(0..candidates.len())];
            groups[j].push(row);
            group_vectors[j].push(key.clone());
        }
    }

    let partition = Partition::new(groups, n)?;

    // Build one ST per sensitive attribute. All counts are 1 by
    // construction (pairwise-distinct values per attribute per group).
    let mut st = vec![Vec::new(); md.sensitive_count()];
    for j in 0..partition.group_count() as u32 {
        for (k, st_k) in st.iter_mut().enumerate() {
            let mut values: Vec<u32> = partition
                .group(j)
                .iter()
                .map(|&r| md.table.value(r as usize, md.sensitive[k]).code())
                .collect();
            values.sort_unstable();
            for v in values {
                st_k.push((j, Value(v), 1u32));
            }
        }
    }
    Ok(MultiAnatomized { partition, st })
}

#[cfg(test)]
mod tests {
    use super::*;
    use anatomy_tables::{Attribute, Schema, TableBuilder};

    fn md_two_sensitive(pairs: &[(u32, u32)]) -> MultiSensitiveMicrodata {
        let schema = Schema::new(vec![
            Attribute::numerical("Age", 1000),
            Attribute::categorical("S1", 10),
            Attribute::categorical("S2", 10),
        ])
        .unwrap();
        let mut b = TableBuilder::new(schema);
        for (i, &(s1, s2)) in pairs.iter().enumerate() {
            b.push_row(&[i as u32, s1, s2]).unwrap();
        }
        MultiSensitiveMicrodata::new(b.finish(), vec![0], vec![1, 2]).unwrap()
    }

    fn assert_multi_invariants(md: &MultiSensitiveMicrodata, out: &MultiAnatomized, l: usize) {
        let p = &out.partition;
        for j in 0..p.group_count() as u32 {
            let rows = p.group(j);
            assert!(rows.len() >= l);
            // Pairwise distinct in every sensitive attribute.
            for (k, &col) in md.sensitive.iter().enumerate() {
                let mut vals: Vec<u32> = rows
                    .iter()
                    .map(|&r| md.table().value(r as usize, col).code())
                    .collect();
                vals.sort_unstable();
                let len = vals.len();
                vals.dedup();
                assert_eq!(vals.len(), len, "group {j} attr {k} has duplicates");
            }
        }
    }

    #[test]
    fn latin_square_data_partitions_cleanly() {
        // Sensitive vectors (i mod 4, (i + i/4) mod 4): a Latin-square-like
        // layout where compatibility is easy.
        let pairs: Vec<(u32, u32)> = (0..32u32).map(|i| (i % 4, (i + i / 4) % 4)).collect();
        let md = md_two_sensitive(&pairs);
        let out = anatomize_multi(&md, 3, 7).unwrap();
        assert_multi_invariants(&md, &out, 3);
        assert_eq!(out.st.len(), 2);
        // ST counts are all 1 and cover n rows per attribute.
        for st_k in &out.st {
            assert!(st_k.iter().all(|&(_, _, c)| c == 1));
            assert_eq!(st_k.len(), 32);
        }
    }

    #[test]
    fn residues_join_compatible_groups() {
        let mut pairs: Vec<(u32, u32)> = (0..30u32).map(|i| (i % 5, (i + i / 5) % 5)).collect();
        pairs.push((0, 1)); // 31 tuples, l = 3 -> residue
        let md = md_two_sensitive(&pairs);
        let out = anatomize_multi(&md, 3, 11).unwrap();
        assert_multi_invariants(&md, &out, 3);
        let total: usize = out.partition.group_sizes().iter().sum();
        assert_eq!(total, 31);
    }

    #[test]
    fn infeasible_correlation_detected() {
        // S2 == S1 for every tuple: any two tuples differing in S1 also
        // differ in S2, so grouping works... make them *conflict* instead:
        // S2 constant -> no two tuples are compatible in S2.
        let pairs: Vec<(u32, u32)> = (0..12u32).map(|i| (i % 6, 0)).collect();
        let md = md_two_sensitive(&pairs);
        let err = anatomize_multi(&md, 2, 3).unwrap_err();
        // Constant S2 fails the per-attribute eligibility check first.
        assert!(matches!(err, CoreError::NotEligible { .. }));
    }

    #[test]
    fn greedy_failure_is_reported_not_looped() {
        // Eligible per attribute, but vectors pair up incompatibly:
        // (0,0) x3, (0,1) x3, (1,0) x3, (1,1) x3 with l = 3 — any 3 buckets
        // include two sharing a coordinate.
        let mut pairs = Vec::new();
        for &(a, b) in &[(0u32, 0u32), (0, 1), (1, 0), (1, 1)] {
            for _ in 0..3 {
                pairs.push((a, b));
            }
        }
        let md = md_two_sensitive(&pairs);
        let err = anatomize_multi(&md, 3, 3).unwrap_err();
        assert!(
            matches!(
                err,
                CoreError::MultiSensitiveInfeasible(_) | CoreError::NotEligible { .. }
            ),
            "unexpected error {err:?}"
        );
    }

    #[test]
    fn single_sensitive_reduces_to_anatomize_semantics() {
        let schema = Schema::new(vec![
            Attribute::numerical("Age", 100),
            Attribute::categorical("S", 6),
        ])
        .unwrap();
        let mut b = TableBuilder::new(schema);
        for i in 0..24u32 {
            b.push_row(&[i, i % 6]).unwrap();
        }
        let md = MultiSensitiveMicrodata::new(b.finish(), vec![0], vec![1]).unwrap();
        let out = anatomize_multi(&md, 4, 5).unwrap();
        assert_multi_invariants(&md, &out, 4);
        assert_eq!(out.partition.group_count(), 6);
    }

    #[test]
    fn designation_validation() {
        let schema = Schema::new(vec![
            Attribute::numerical("A", 10),
            Attribute::categorical("S", 5),
        ])
        .unwrap();
        let t = TableBuilder::new(schema).finish();
        assert!(MultiSensitiveMicrodata::new(t.clone(), vec![0], vec![]).is_err());
        assert!(MultiSensitiveMicrodata::new(t.clone(), vec![], vec![1]).is_err());
        assert!(MultiSensitiveMicrodata::new(t.clone(), vec![0], vec![0]).is_err());
        assert!(MultiSensitiveMicrodata::new(t.clone(), vec![0], vec![5]).is_err());
        assert!(MultiSensitiveMicrodata::new(t, vec![0], vec![1]).is_ok());
    }

    #[test]
    fn empty_input() {
        let md = md_two_sensitive(&[]);
        let out = anatomize_multi(&md, 2, 0).unwrap();
        assert!(out.partition.is_empty());
    }
}
