//! l-diversity: Definition 2, the eligibility condition, and alternative
//! instantiations.
//!
//! The paper adopts the *simple* frequency instantiation of l-diversity
//! (termed "recursive (1/(l−1), 2)-diversity" in Machanavajjhala et al.,
//! the paper's ref [10]): in every QI-group, the most frequent sensitive
//! value covers at most `1/l` of the group (Inequality 1). Section 3.1
//! notes that anatomy extends straightforwardly to the other
//! instantiations; [`DiversityCriterion`] provides the two standard ones
//! (entropy and recursive (c,l)) so that the extension is concrete, not
//! hypothetical.

use crate::error::CoreError;
use anatomy_tables::stats::Histogram;
use anatomy_tables::Microdata;

/// Check Definition 2 for one QI-group given its sensitive histogram:
/// `c(v) / |QI| <= 1/l` for the most frequent `v`, evaluated in exact
/// integer arithmetic as `l * c(v) <= |QI|`.
pub fn group_is_l_diverse(hist: &Histogram, l: usize) -> bool {
    match hist.max() {
        None => true, // an empty group is vacuously diverse
        Some((_, max_count)) => max_count.saturating_mul(l) <= hist.total(),
    }
}

/// The eligibility condition (proof of Property 1, after ref [10]): an
/// l-diverse partition of `T` exists **iff** at most `n/l` tuples share any
/// one sensitive value. Returns the sensitive histogram on success so
/// callers can reuse it.
pub fn check_eligibility(md: &Microdata, l: usize) -> Result<Histogram, CoreError> {
    if l < 2 {
        return Err(CoreError::InvalidL(l));
    }
    let hist = Histogram::of_column(md.sensitive_codes(), md.sensitive_domain_size());
    let n = md.len();
    if let Some((_, max_count)) = hist.max() {
        if max_count.saturating_mul(l) > n {
            return Err(CoreError::NotEligible { max_count, n, l });
        }
    }
    Ok(hist)
}

/// The largest `l` for which `md` is eligible: `⌊n / max_count⌋` where
/// `max_count` is the frequency of the most common sensitive value —
/// the natural "how much privacy can this dataset support?" question a
/// publisher asks first. Returns `None` for empty microdata.
pub fn max_feasible_l(md: &Microdata) -> Option<usize> {
    let hist = Histogram::of_column(md.sensitive_codes(), md.sensitive_domain_size());
    let (_, max_count) = hist.max()?;
    Some(md.len() / max_count)
}

/// Restore eligibility by suppression: drop the minimum number of tuples
/// so that the remainder satisfies the eligibility condition for `l`
/// (suppression is the classic escape hatch of the generalization
/// literature the paper's Section 2 mentions).
///
/// Returns the retained microdata and the (sorted) suppressed row indices.
/// Tuples are dropped from over-represented sensitive values, newest rows
/// first, until every value `v` satisfies `count(v) * l <= n'` where `n'`
/// is the retained size. Returns an error for `l < 2`; suppressing
/// everything is never necessary for `l <= λ`, but tiny inputs may end up
/// empty, which is reported as success with all rows suppressed.
pub fn suppress_to_eligibility(
    md: &Microdata,
    l: usize,
) -> Result<(Microdata, Vec<usize>), CoreError> {
    if l < 2 {
        return Err(CoreError::InvalidL(l));
    }
    let n = md.len();
    let mut counts = Histogram::of_column(md.sensitive_codes(), md.sensitive_domain_size());
    // Iteratively cap the most frequent value: dropping one tuple of the
    // modal value always weakly improves eligibility (numerator falls by
    // l, denominator by 1).
    let mut drop_per_value = vec![0usize; md.sensitive_domain_size() as usize];
    let mut retained = n;
    while let Some((v, c)) = counts.max() {
        if c * l <= retained {
            break;
        }
        counts.remove(v);
        drop_per_value[v.index()] += 1;
        retained -= 1;
        if retained == 0 {
            break;
        }
    }
    // Materialize: drop the *last* `drop_per_value[v]` rows of each value.
    let mut suppressed = Vec::with_capacity(n - retained);
    let mut keep = Vec::with_capacity(retained);
    for r in (0..n).rev() {
        let v = md.sensitive_value(r).index();
        if drop_per_value[v] > 0 {
            drop_per_value[v] -= 1;
            suppressed.push(r);
        } else {
            keep.push(r);
        }
    }
    keep.reverse();
    suppressed.reverse();
    let retained_md = md.gather(&keep)?;
    Ok((retained_md, suppressed))
}

/// An instantiation of the l-diversity principle, applied to one QI-group's
/// sensitive histogram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DiversityCriterion {
    /// The paper's Definition 2: most frequent value covers ≤ 1/l of the
    /// group.
    Frequency {
        /// Diversity parameter `l >= 2`.
        l: usize,
    },
    /// Entropy l-diversity (ref [10]): the entropy of the group's sensitive
    /// distribution is at least `ln(l)`.
    Entropy {
        /// Diversity parameter `l >= 2`.
        l: usize,
    },
    /// Recursive (c,l)-diversity (ref [10]): with group counts sorted
    /// descending `r1 >= r2 >= ...`, require
    /// `r1 < c * (r_l + r_{l+1} + ... + r_m)`.
    Recursive {
        /// The multiplier `c > 0`.
        c: f64,
        /// Diversity parameter `l >= 2`.
        l: usize,
    },
}

impl DiversityCriterion {
    /// Whether a QI-group with sensitive histogram `hist` satisfies the
    /// criterion. Empty groups are vacuously diverse.
    pub fn check(&self, hist: &Histogram) -> bool {
        if hist.total() == 0 {
            return true;
        }
        match *self {
            DiversityCriterion::Frequency { l } => group_is_l_diverse(hist, l),
            DiversityCriterion::Entropy { l } => hist.entropy() >= (l as f64).ln() - 1e-12,
            DiversityCriterion::Recursive { c, l } => {
                let counts = hist.sorted_counts_desc();
                if counts.len() < l {
                    // fewer than l distinct values can never be
                    // (c,l)-diverse for the tail sum definition
                    return false;
                }
                let r1 = counts[0] as f64;
                let tail: usize = counts[l - 1..].iter().sum();
                r1 < c * tail as f64
            }
        }
    }

    /// The diversity parameter `l` of the criterion.
    pub fn l(&self) -> usize {
        match *self {
            DiversityCriterion::Frequency { l }
            | DiversityCriterion::Entropy { l }
            | DiversityCriterion::Recursive { l, .. } => l,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anatomy_tables::{Attribute, Microdata, Schema, TableBuilder};

    fn md_with_sensitive(codes: &[u32]) -> Microdata {
        let schema = Schema::new(vec![
            Attribute::numerical("Age", 100),
            Attribute::categorical("Disease", 10),
        ])
        .unwrap();
        let mut b = TableBuilder::new(schema);
        for (i, &c) in codes.iter().enumerate() {
            b.push_row(&[(i % 100) as u32, c]).unwrap();
        }
        Microdata::with_leading_qi(b.finish(), 1).unwrap()
    }

    #[test]
    fn frequency_check_matches_definition_2() {
        // Table 2 of the paper: QI-group 1 has {pneumonia: 2, dyspepsia: 2}.
        let h = Histogram::of_column(&[0, 0, 1, 1], 5);
        assert!(group_is_l_diverse(&h, 2));
        assert!(!group_is_l_diverse(&h, 3));
        // 3 of 4 identical: only 1-diverse.
        let h = Histogram::of_column(&[0, 0, 0, 1], 5);
        assert!(!group_is_l_diverse(&h, 2));
    }

    #[test]
    fn empty_group_is_vacuously_diverse() {
        let h = Histogram::new(5);
        assert!(group_is_l_diverse(&h, 10));
    }

    #[test]
    fn eligibility_accepts_balanced_data() {
        let md = md_with_sensitive(&[0, 1, 2, 3, 0, 1, 2, 3]);
        assert!(check_eligibility(&md, 4).is_ok());
        assert!(check_eligibility(&md, 2).is_ok());
    }

    #[test]
    fn eligibility_rejects_skew() {
        // 5 of 8 tuples share value 0: max l with 5*l <= 8 fails even at 2.
        let md = md_with_sensitive(&[0, 0, 0, 0, 0, 1, 2, 3]);
        let err = check_eligibility(&md, 2).unwrap_err();
        assert_eq!(
            err,
            CoreError::NotEligible {
                max_count: 5,
                n: 8,
                l: 2
            }
        );
    }

    #[test]
    fn eligibility_boundary_is_exact() {
        // Exactly n/l occurrences is allowed (Inequality 1 is <=).
        let md = md_with_sensitive(&[0, 0, 1, 1, 2, 3]); // max 2, n=6, l=3
        assert!(check_eligibility(&md, 3).is_ok());
        // One more duplicate tips it over.
        let md = md_with_sensitive(&[0, 0, 0, 1, 2, 3]); // max 3, n=6, l=3
        assert!(check_eligibility(&md, 3).is_err());
    }

    #[test]
    fn invalid_l_rejected() {
        let md = md_with_sensitive(&[0, 1]);
        assert_eq!(
            check_eligibility(&md, 0).unwrap_err(),
            CoreError::InvalidL(0)
        );
        assert_eq!(
            check_eligibility(&md, 1).unwrap_err(),
            CoreError::InvalidL(1)
        );
    }

    #[test]
    fn entropy_criterion() {
        // Uniform over 4 values: entropy = ln 4, passes l=4 but not l=5.
        let h = Histogram::of_column(&[0, 1, 2, 3], 5);
        assert!(DiversityCriterion::Entropy { l: 4 }.check(&h));
        assert!(!DiversityCriterion::Entropy { l: 5 }.check(&h));
        // Skewed: entropy < ln 4.
        let h = Histogram::of_column(&[0, 0, 0, 1, 2, 3], 5);
        assert!(!DiversityCriterion::Entropy { l: 4 }.check(&h));
    }

    #[test]
    fn recursive_criterion() {
        // counts desc = [3, 2, 1]; (c=2, l=2): r1=3 < 2*(2+1)=6 -> pass.
        let h = Histogram::of_column(&[0, 0, 0, 1, 1, 2], 5);
        assert!(DiversityCriterion::Recursive { c: 2.0, l: 2 }.check(&h));
        // (c=1, l=3): r1=3 < 1*(1)=1 -> fail.
        assert!(!DiversityCriterion::Recursive { c: 1.0, l: 3 }.check(&h));
        // fewer than l distinct values -> fail.
        assert!(!DiversityCriterion::Recursive { c: 10.0, l: 4 }.check(&h));
    }

    #[test]
    fn frequency_criterion_agrees_with_free_function() {
        let h = Histogram::of_column(&[0, 1, 2, 0, 1, 2], 5);
        for l in 2..6 {
            assert_eq!(
                DiversityCriterion::Frequency { l }.check(&h),
                group_is_l_diverse(&h, l)
            );
        }
    }

    #[test]
    fn max_feasible_l_matches_definition() {
        let md = md_with_sensitive(&[0, 0, 1, 2, 3, 4, 5, 6]); // max 2, n 8
        assert_eq!(max_feasible_l(&md), Some(4));
        let md = md_with_sensitive(&[0, 1, 2, 3]); // max 1
        assert_eq!(max_feasible_l(&md), Some(4));
        let md = md_with_sensitive(&[]);
        assert_eq!(max_feasible_l(&md), None);
    }

    #[test]
    fn suppression_restores_eligibility_minimally() {
        // Value 0 occurs 6 times in 10 tuples: l = 2 needs count*2 <= n'.
        // Dropping k tuples of value 0: (6-k)*2 <= 10-k -> k >= 2.
        let md = md_with_sensitive(&[0, 0, 0, 0, 0, 0, 1, 2, 3, 4]);
        assert!(check_eligibility(&md, 2).is_err());
        let (kept, dropped) = suppress_to_eligibility(&md, 2).unwrap();
        assert_eq!(dropped.len(), 2);
        assert_eq!(kept.len(), 8);
        assert!(check_eligibility(&kept, 2).is_ok());
        // Dropped rows all carried the over-represented value.
        for &r in &dropped {
            assert_eq!(md.sensitive_value(r).code(), 0);
        }
        // Suppressed indices reported sorted ascending.
        let mut sorted = dropped.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, dropped);
    }

    #[test]
    fn suppression_is_a_noop_on_eligible_data() {
        let md = md_with_sensitive(&[0, 1, 2, 3, 0, 1, 2, 3]);
        let (kept, dropped) = suppress_to_eligibility(&md, 4).unwrap();
        assert!(dropped.is_empty());
        assert_eq!(kept.len(), 8);
    }

    #[test]
    fn suppression_rejects_bad_l_and_handles_tiny_inputs() {
        let md = md_with_sensitive(&[0]);
        assert!(suppress_to_eligibility(&md, 1).is_err());
        // A single tuple can never satisfy l = 2: everything is suppressed.
        let (kept, dropped) = suppress_to_eligibility(&md, 2).unwrap();
        assert_eq!(kept.len(), 0);
        assert_eq!(dropped, vec![0]);
    }

    #[test]
    fn criterion_reports_l() {
        assert_eq!(DiversityCriterion::Frequency { l: 10 }.l(), 10);
        assert_eq!(DiversityCriterion::Entropy { l: 3 }.l(), 3);
        assert_eq!(DiversityCriterion::Recursive { c: 1.0, l: 4 }.l(), 4);
    }
}
