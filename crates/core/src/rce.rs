//! Re-construction error (RCE) and its optimality guarantees.
//!
//! `RCE = Σ_{t ∈ T} Err_t` (Equation 13) measures how well the published
//! tables let a researcher re-model the microdata. Theorem 2: any pair of
//! anatomized tables has `RCE ≥ n(1 − 1/l)`. Theorem 4: `Anatomize` meets
//! the bound exactly when `l | n`, and otherwise exceeds it by the factor
//! `1 + r/(n(l−1)) ≤ 1 + 1/n` where `r = n mod l`.

use crate::partition::Partition;
use crate::pdf::err_anatomy_tuple;
use crate::published::AnatomizedTables;
use anatomy_tables::Microdata;

/// Theorem 2's lower bound: `n (1 − 1/l)`.
pub fn rce_lower_bound(n: usize, l: usize) -> f64 {
    assert!(l >= 1);
    n as f64 * (1.0 - 1.0 / l as f64)
}

/// Theorem 4's predicted RCE for the output of `Anatomize`:
/// `(n − r)(1 − 1/l) + r` with `r = n mod l`.
pub fn rce_predicted_anatomize(n: usize, l: usize) -> f64 {
    assert!(l >= 1);
    let r = n % l;
    (n - r) as f64 * (1.0 - 1.0 / l as f64) + r as f64
}

/// Exact RCE of an arbitrary partition over `md` (Equations 12–13), summed
/// group by group from each group's sensitive histogram.
pub fn rce_of_partition(md: &Microdata, partition: &Partition) -> f64 {
    let mut total = 0.0;
    for j in 0..partition.group_count() as u32 {
        let hist = partition.sensitive_histogram(md, j);
        // Each of the c(v) tuples with value v contributes
        // err_anatomy_tuple(hist, v).
        for (v, c) in hist.nonzero() {
            total += c as f64 * err_anatomy_tuple(&hist, v);
        }
    }
    total
}

/// Exact RCE computed from a published QIT/ST pair alone (the ST determines
/// every group's histogram, and each tuple's error depends only on its
/// group's histogram and its own value — summing `c(v) · Err(v)` over ST
/// records needs no microdata).
pub fn rce_of_anatomized(tables: &AnatomizedTables) -> f64 {
    let mut total = 0.0;
    for j in 0..tables.group_count() as u32 {
        let records = tables.st_of(j);
        let s = tables.group_size(j) as f64;
        let sum_sq: f64 = records
            .iter()
            .map(|r| (r.count as f64) * (r.count as f64))
            .sum();
        for r in records {
            let c = r.count as f64;
            let a = 1.0 - c / s;
            let err = a * a + (sum_sq - c * c) / (s * s);
            total += c * err;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anatomize::{anatomize, AnatomizeConfig};
    use anatomy_tables::{Attribute, Schema, TableBuilder};

    fn md_from_sensitive(codes: &[u32], domain: u32) -> Microdata {
        let schema = Schema::new(vec![
            Attribute::numerical("A", 10_000),
            Attribute::categorical("S", domain),
        ])
        .unwrap();
        let mut b = TableBuilder::new(schema);
        for (i, &c) in codes.iter().enumerate() {
            b.push_row(&[i as u32, c]).unwrap();
        }
        Microdata::with_leading_qi(b.finish(), 1).unwrap()
    }

    #[test]
    fn lower_bound_formula() {
        assert!((rce_lower_bound(100, 10) - 90.0).abs() < 1e-12);
        assert!((rce_lower_bound(8, 2) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn predicted_equals_bound_when_l_divides_n() {
        assert_eq!(rce_predicted_anatomize(100, 10), rce_lower_bound(100, 10));
        assert_eq!(rce_predicted_anatomize(99, 3), rce_lower_bound(99, 3));
    }

    #[test]
    fn predicted_exceeds_bound_by_at_most_1_plus_1_over_n() {
        for n in [10usize, 11, 57, 100, 101, 999] {
            for l in [2usize, 3, 7, 10] {
                let predicted = rce_predicted_anatomize(n, l);
                let bound = rce_lower_bound(n, l);
                assert!(predicted + 1e-9 >= bound);
                assert!(
                    predicted <= bound * (1.0 + 1.0 / n as f64) + 1e-9,
                    "n={n} l={l}: predicted {predicted} vs bound {bound}"
                );
            }
        }
    }

    #[test]
    fn anatomize_rce_matches_theorem_4_exactly() {
        // n divisible by l.
        let codes: Vec<u32> = (0..60).map(|i| i % 6).collect();
        let md = md_from_sensitive(&codes, 6);
        let p = anatomize(&md, &AnatomizeConfig::new(3)).unwrap();
        let rce = rce_of_partition(&md, &p);
        assert!((rce - rce_lower_bound(60, 3)).abs() < 1e-9, "rce = {rce}");

        // n not divisible by l: RCE equals the Theorem 4 closed form.
        let codes: Vec<u32> = (0..61).map(|i| i % 7).collect();
        let md = md_from_sensitive(&codes, 7);
        let p = anatomize(&md, &AnatomizeConfig::new(3)).unwrap();
        let rce = rce_of_partition(&md, &p);
        assert!(
            (rce - rce_predicted_anatomize(61, 3)).abs() < 1e-9,
            "rce = {rce}, predicted = {}",
            rce_predicted_anatomize(61, 3)
        );
    }

    #[test]
    fn rce_from_tables_matches_rce_from_partition() {
        let codes: Vec<u32> = (0..97).map(|i| (i * 11) % 8).collect();
        let md = md_from_sensitive(&codes, 8);
        let p = anatomize(&md, &AnatomizeConfig::new(4)).unwrap();
        let t = crate::published::AnatomizedTables::publish(&md, &p, 4).unwrap();
        let a = rce_of_partition(&md, &p);
        let b = rce_of_anatomized(&t);
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn suboptimal_partition_has_higher_rce() {
        // With l = 2, groups holding λ = 4 distinct values have per-tuple
        // error 1 - 1/4 = 0.75 instead of the optimal 1 - 1/2 = 0.5
        // (Theorem 2's proof: the minimum needs λ = l).
        let codes = [0u32, 1, 2, 3, 0, 1, 2, 3];
        let md = md_from_sensitive(&codes, 4);
        let p = anatomize(&md, &AnatomizeConfig::new(2)).unwrap();
        let optimal = rce_of_partition(&md, &p);
        assert!((optimal - 4.0).abs() < 1e-9); // 8 * 0.5

        let coarse = Partition::new(vec![(0..8).collect()], 8).unwrap();
        let coarse_rce = rce_of_partition(&md, &coarse);
        assert!((coarse_rce - 6.0).abs() < 1e-9); // 8 * 0.75
        assert!(coarse_rce > optimal);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]
            /// Theorem 2 + Theorem 4: for every eligible input, Anatomize's
            /// RCE lies in [bound, bound * (1 + 1/n)].
            #[test]
            fn theorem_2_and_4_hold(
                codes in proptest::collection::vec(0u32..10, 6..150),
                l in 2usize..5,
                seed in 0u64..100,
            ) {
                let md = md_from_sensitive(&codes, 10);
                let config = AnatomizeConfig::new(l).with_seed(seed);
                if let Ok(p) = anatomize(&md, &config) {
                    let n = codes.len();
                    let rce = rce_of_partition(&md, &p);
                    let bound = rce_lower_bound(n, l);
                    prop_assert!(rce + 1e-9 >= bound, "rce {} below bound {}", rce, bound);
                    prop_assert!(
                        rce <= bound * (1.0 + 1.0 / n as f64) + 1e-9,
                        "rce {} above (1+1/n) * bound {}",
                        rce,
                        bound
                    );
                    // And the exact closed form of Theorem 4.
                    let predicted = rce_predicted_anatomize(n, l);
                    prop_assert!((rce - predicted).abs() < 1e-6);
                }
            }
        }
    }
}
