//! The adversary's view: QIT ⋈ ST and breach probabilities.
//!
//! Lemma 1: the natural join of the QIT and ST has one record per (tuple,
//! sensitive-value) combination of the tuple's group, and from the
//! adversary's perspective `Pr{t[d+1] = v} = c_j(v) / |QI_j|` (Equation 2).
//! Corollary 1 bounds the probability of correctly reconstructing any tuple
//! by `1/l`; Theorem 1 extends the bound to *individuals*, whose QI values
//! may match several tuples spread over several groups.

use crate::partition::GroupId;
use crate::published::AnatomizedTables;
use anatomy_tables::{Microdata, Value};

/// One record of QIT ⋈ ST (the paper's Table 4 rows).
#[derive(Debug, Clone, PartialEq)]
pub struct JoinRecord {
    /// QIT row index the record derives from.
    pub row: usize,
    /// The tuple's exact QI values.
    pub qi: Vec<Value>,
    /// The shared group id.
    pub group: GroupId,
    /// A sensitive value occurring in the group.
    pub value: Value,
    /// `c_j(value)`.
    pub count: u32,
    /// Equation 2: `count / |QI_j|`.
    pub probability: f64,
}

/// Materialize the natural join QIT ⋈ ST (Lemma 1).
///
/// The join has `Σ_rows λ_{group(row)}` records; for bulk data prefer the
/// probability functions below, which avoid materialization.
pub fn natural_join(tables: &AnatomizedTables) -> Vec<JoinRecord> {
    let mut out = Vec::new();
    for row in 0..tables.len() {
        let j = tables.group_ids()[row];
        let size = tables.group_size(j) as f64;
        let qi: Vec<Value> = (0..tables.qi_count())
            .map(|i| Value(tables.qi_codes(i)[row]))
            .collect();
        for rec in tables.st_of(j) {
            out.push(JoinRecord {
                row,
                qi: qi.clone(),
                group: j,
                value: rec.value,
                count: rec.count,
                probability: rec.count as f64 / size,
            });
        }
    }
    out
}

/// Equation 2: the adversary's probability that QIT row `row` carries
/// sensitive value `v`, i.e. `c_j(v) / |QI_j|` for the row's group `j`.
pub fn tuple_value_probability(tables: &AnatomizedTables, row: usize, v: Value) -> f64 {
    let j = tables.group_ids()[row];
    tables.count_in_group(j, v) as f64 / tables.group_size(j) as f64
}

/// Corollary 1, per tuple: the probability of correctly re-constructing
/// each microdata tuple, `c_j(v_real) / |QI_j|`. Each entry is at most
/// `1/l` when the underlying partition is l-diverse.
pub fn tuple_breach_probabilities(tables: &AnatomizedTables, md: &Microdata) -> Vec<f64> {
    (0..md.len())
        .map(|r| tuple_value_probability(tables, r, md.sensitive_value(r)))
        .collect()
}

/// Theorem 1, per individual: an adversary targeting an individual `o`
/// whose QI values equal `qi` (and whose real sensitive value is
/// `real_value`) matches `f` QIT rows, assumes each belongs to `o` with
/// probability `1/f`, and applies Lemma 1 in each scenario; the overall
/// breach probability is `Σ_i c_{j_i}(v_real) / (f · |QI_{j_i}|)`.
///
/// Returns `None` when no QIT row matches `qi` (the adversary learns the
/// individual is absent).
pub fn individual_breach_probability(
    tables: &AnatomizedTables,
    qi: &[Value],
    real_value: Value,
) -> Option<f64> {
    assert_eq!(qi.len(), tables.qi_count(), "QI arity mismatch");
    let mut matches = 0usize;
    let mut sum = 0.0f64;
    'rows: for row in 0..tables.len() {
        for (i, v) in qi.iter().enumerate() {
            if tables.qi_codes(i)[row] != v.code() {
                continue 'rows;
            }
        }
        matches += 1;
        sum += tuple_value_probability(tables, row, real_value);
    }
    if matches == 0 {
        None
    } else {
        Some(sum / matches as f64)
    }
}

/// Section 3.3, assumption A2 dropped: the probability that the target is
/// in the microdata at all, estimated from an external database (e.g. the
/// paper's voter registration list, Table 5) against an **anatomized**
/// release.
///
/// Anatomy publishes exact QI values, so the adversary counts the QIT rows
/// equal to the target's QI vector against the external individuals
/// sharing that vector: `min(1, matching_rows / matching_candidates)`.
/// For Alice in the worked example this is `2/2 = 1` — anatomy reveals
/// that everyone matching her QI must be present. Returns 0 when no QIT
/// row matches (the target is provably absent).
pub fn presence_probability_anatomized(
    tables: &AnatomizedTables,
    target_qi: &[Value],
    external: &[Vec<Value>],
) -> f64 {
    let rows = count_matching_rows(tables, target_qi);
    if rows == 0 {
        return 0.0;
    }
    let candidates = external
        .iter()
        .filter(|c| c.as_slice() == target_qi)
        .count();
    if candidates == 0 {
        // The adversary's external database does not even contain the
        // target; presence cannot be ruled out, so the row evidence stands
        // alone.
        return 1.0;
    }
    (rows as f64 / candidates as f64).min(1.0)
}

/// Formula 3: the overall breach probability of an individual when the
/// adversary knows the QI values (A1) but not the presence (A2):
/// `Pr_A2 · Pr_breach(· | A2)`. Bounded by `1/l` because the conditional
/// factor is (Theorem 1).
pub fn overall_breach_probability(
    tables: &AnatomizedTables,
    target_qi: &[Value],
    real_value: Value,
    external: &[Vec<Value>],
) -> f64 {
    let presence = presence_probability_anatomized(tables, target_qi, external);
    if presence == 0.0 {
        return 0.0;
    }
    let conditional = individual_breach_probability(tables, target_qi, real_value).unwrap_or(0.0);
    presence * conditional
}

fn count_matching_rows(tables: &AnatomizedTables, qi: &[Value]) -> usize {
    assert_eq!(qi.len(), tables.qi_count(), "QI arity mismatch");
    let mut matches = 0usize;
    'rows: for row in 0..tables.len() {
        for (i, v) in qi.iter().enumerate() {
            if tables.qi_codes(i)[row] != v.code() {
                continue 'rows;
            }
        }
        matches += 1;
    }
    matches
}

/// The largest tuple-level breach probability over the whole publication —
/// must be at most `1/l` (Corollary 1).
pub fn max_tuple_breach(tables: &AnatomizedTables, md: &Microdata) -> f64 {
    tuple_breach_probabilities(tables, md)
        .into_iter()
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anatomize::{anatomize, AnatomizeConfig};
    use crate::partition::Partition;
    use anatomy_tables::{Attribute, AttributeKind, Schema, TableBuilder};

    /// The paper's running example (Table 1): diseases coded
    /// bronchitis=0, dyspepsia=1, flu=2, gastritis=3, pneumonia=4.
    fn paper_md() -> Microdata {
        let schema = Schema::new(vec![
            Attribute::numerical("Age", 100),
            Attribute::with_labels(
                "Sex",
                AttributeKind::Categorical,
                vec!["M".into(), "F".into()],
            ),
            Attribute::numerical("Zipcode", 60),
            Attribute::categorical("Disease", 5),
        ])
        .unwrap();
        let mut b = TableBuilder::new(schema);
        for row in [
            [23, 0, 11, 4],
            [27, 0, 13, 1],
            [35, 0, 59, 1],
            [59, 0, 12, 4],
            [61, 1, 54, 2],
            [65, 1, 25, 3],
            [65, 1, 25, 2],
            [70, 1, 30, 0],
        ] {
            b.push_row(&row).unwrap();
        }
        Microdata::with_leading_qi(b.finish(), 3).unwrap()
    }

    fn paper_tables() -> (Microdata, AnatomizedTables) {
        let md = paper_md();
        let p = Partition::new(vec![vec![0, 1, 2, 3], vec![4, 5, 6, 7]], 8).unwrap();
        let t = AnatomizedTables::publish(&md, &p, 2).unwrap();
        (md, t)
    }

    #[test]
    fn join_reproduces_table_4() {
        let (_, t) = paper_tables();
        let join = natural_join(&t);
        // Group 1 has 4 tuples x 2 ST records, group 2 has 4 x 3.
        assert_eq!(join.len(), 4 * 2 + 4 * 3);
        // First record: Bob's tuple (23, M, 11k) with dyspepsia, count 2,
        // probability 50% — the paper's Table 4 first row.
        let first = &join[0];
        assert_eq!(first.row, 0);
        assert_eq!(first.qi, vec![Value(23), Value(0), Value(11)]);
        assert_eq!(first.value, Value(1));
        assert_eq!(first.count, 2);
        assert!((first.probability - 0.5).abs() < 1e-12);
        // Probabilities per row sum to 1 (the c_j(v) of a group sum to
        // |QI_j|).
        for row in 0..t.len() {
            let s: f64 = join
                .iter()
                .filter(|r| r.row == row)
                .map(|r| r.probability)
                .sum();
            assert!((s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn bob_cannot_have_flu() {
        // "the QI-values of tuple 1 are not combined with any other disease
        // such as flu" — Section 3.2.
        let (_, t) = paper_tables();
        assert_eq!(tuple_value_probability(&t, 0, Value(2)), 0.0);
        assert_eq!(tuple_value_probability(&t, 0, Value(4)), 0.5);
        assert_eq!(tuple_value_probability(&t, 0, Value(1)), 0.5);
    }

    #[test]
    fn corollary_1_bound_holds() {
        let (md, t) = paper_tables();
        let breaches = tuple_breach_probabilities(&t, &md);
        assert_eq!(breaches.len(), 8);
        for b in &breaches {
            assert!(*b <= 0.5 + 1e-12, "tuple breach {b} exceeds 1/l");
        }
        assert!((max_tuple_breach(&t, &md) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn alice_individual_breach_is_half() {
        // Alice (65, F, 25000) matches tuples 6 and 7 (both in group 2);
        // her real disease is flu. Section 3.2 computes the overall breach
        // as 1/2*50% + 1/2*50% = 50%.
        let (_, t) = paper_tables();
        let p =
            individual_breach_probability(&t, &[Value(65), Value(1), Value(25)], Value(2)).unwrap();
        assert!((p - 0.5).abs() < 1e-12);
    }

    #[test]
    fn absent_individual_detected() {
        // Emily (67, F, 33000) is not in the microdata: anatomy reveals her
        // absence (Section 3.3's voter-list discussion).
        let (_, t) = paper_tables();
        assert!(
            individual_breach_probability(&t, &[Value(67), Value(1), Value(33)], Value(2))
                .is_none()
        );
    }

    #[test]
    fn presence_probability_matches_section_3_3() {
        let (_, t) = paper_tables();
        // The voter list: Ada, Alice, Bella, Emily, Stephanie.
        let voters: Vec<Vec<Value>> = vec![
            vec![Value(61), Value(1), Value(54)],
            vec![Value(65), Value(1), Value(25)],
            vec![Value(65), Value(1), Value(25)],
            vec![Value(67), Value(1), Value(33)],
            vec![Value(70), Value(1), Value(30)],
        ];
        // Alice: 2 QIT rows match (65, F, 25000), 2 voters share the QI ->
        // presence 1 (anatomy exposes that both must be in).
        let alice = vec![Value(65), Value(1), Value(25)];
        assert_eq!(presence_probability_anatomized(&t, &alice, &voters), 1.0);
        // Emily: no QIT row matches -> provably absent.
        let emily = vec![Value(67), Value(1), Value(33)];
        assert_eq!(presence_probability_anatomized(&t, &emily, &voters), 0.0);
    }

    #[test]
    fn formula_3_stays_bounded_by_one_over_l() {
        let (md, t) = paper_tables();
        let voters: Vec<Vec<Value>> = (0..md.len())
            .map(|r| {
                vec![
                    Value(t.qi_codes(0)[r]),
                    Value(t.qi_codes(1)[r]),
                    Value(t.qi_codes(2)[r]),
                ]
            })
            .collect();
        for r in 0..md.len() {
            let qi = voters[r].clone();
            let overall = overall_breach_probability(&t, &qi, md.sensitive_value(r), &voters);
            assert!(overall <= 0.5 + 1e-12, "row {r}: {overall}");
        }
        // Absent target: zero overall breach.
        let ghost = vec![Value(1), Value(0), Value(1)];
        assert_eq!(
            overall_breach_probability(&t, &ghost, Value(0), &voters),
            0.0
        );
    }

    #[test]
    fn theorem_1_bound_on_random_data() {
        // Anatomize random data and verify every individual's breach
        // probability is bounded by 1/l.
        let schema = Schema::new(vec![
            Attribute::numerical("A", 10),
            Attribute::categorical("S", 12),
        ])
        .unwrap();
        let mut b = TableBuilder::new(schema);
        for i in 0..120u32 {
            b.push_row(&[i % 10, (i * 7 + i / 13) % 12]).unwrap();
        }
        let md = Microdata::with_leading_qi(b.finish(), 1).unwrap();
        let l = 4;
        let p = anatomize(&md, &AnatomizeConfig::new(l)).unwrap();
        let t = AnatomizedTables::publish(&md, &p, l).unwrap();
        // Every (QI value, real value) pair that occurs in the data is a
        // potential victim.
        for r in 0..md.len() {
            let qi = vec![md.qi_value(r, 0)];
            let real = md.sensitive_value(r);
            let breach = individual_breach_probability(&t, &qi, real).unwrap();
            assert!(
                breach <= 1.0 / l as f64 + 1e-9,
                "individual breach {breach} exceeds 1/{l}"
            );
        }
    }
}
