//! The published pair of tables: QIT and ST (Definition 3).

use crate::error::CoreError;
use crate::partition::{GroupId, Partition};
use anatomy_tables::{Microdata, Table, Value};
use std::fmt::Write as _;

/// One record of the sensitive table:
/// `(Group-ID, As value, Count)` — "for each QI-group QIj and each distinct
/// As value v in QIj, the ST has a record (j, v, cj(v))" (Definition 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StRecord {
    /// QI-group id (0-based internally; displayed 1-based as in the paper).
    pub group: GroupId,
    /// The sensitive value.
    pub value: Value,
    /// `c_j(v)`: tuples of the group carrying this value.
    pub count: u32,
}

/// The anatomized publication: a quasi-identifier table and a sensitive
/// table over a common set of QI-groups.
///
/// * QIT — schema `(A1, …, Ad, Group-ID)`: stored as a `d`-column
///   [`Table`] (the exact QI values, in the microdata's QI order) plus a
///   parallel `group_ids` vector.
/// * ST — schema `(Group-ID, As, Count)`: stored as [`StRecord`]s sorted by
///   `(group, value)` with a CSR offset index for per-group access.
///
/// Rows keep the microdata's order. A real deployment would shuffle the QIT
/// before release so row order leaks nothing; row order carries no
/// information an adversary does not already get from the QI values
/// themselves, but the shuffle is cheap insurance. Tests and examples rely
/// on the stable order.
#[derive(Debug, Clone, PartialEq)]
pub struct AnatomizedTables {
    qit: Table,
    group_ids: Vec<GroupId>,
    group_sizes: Vec<u32>,
    st: Vec<StRecord>,
    st_offsets: Vec<usize>,
    l: usize,
}

impl AnatomizedTables {
    /// Produce the QIT and ST for `partition` over `md` (Definition 3),
    /// after verifying that the partition is l-diverse (Definition 2) — the
    /// precondition for every privacy guarantee in the paper.
    ///
    /// ```
    /// use anatomy_core::{anatomize, AnatomizeConfig, AnatomizedTables};
    /// use anatomy_tables::{Attribute, Microdata, Schema, TableBuilder};
    ///
    /// # let schema = Schema::new(vec![
    /// #     Attribute::numerical("Age", 100),
    /// #     Attribute::categorical("Disease", 4),
    /// # ])?;
    /// # let mut b = TableBuilder::new(schema);
    /// # for i in 0..12u32 { b.push_row(&[20 + i, i % 4])?; }
    /// # let md = Microdata::with_leading_qi(b.finish(), 1)?;
    /// let partition = anatomize(&md, &AnatomizeConfig::new(3))?;
    /// let tables = AnatomizedTables::publish(&md, &partition, 3)?;
    /// // The QIT keeps exact QI values; the ST holds per-group histograms.
    /// assert_eq!(tables.len(), md.len());
    /// assert_eq!(tables.group_count(), 4);
    /// let total: u32 = tables.st_records().iter().map(|r| r.count).sum();
    /// assert_eq!(total as usize, md.len());
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn publish(md: &Microdata, partition: &Partition, l: usize) -> Result<Self, CoreError> {
        if l < 2 {
            return Err(CoreError::InvalidL(l));
        }
        if partition.len() != md.len() {
            return Err(CoreError::InvalidPartition(format!(
                "partition covers {} rows but microdata has {}",
                partition.len(),
                md.len()
            )));
        }
        partition.check_l_diverse(md, l)?;
        Self::publish_unchecked(md, partition, l)
    }

    /// Like [`AnatomizedTables::publish`], but validating an arbitrary
    /// l-diversity *instantiation* (Section 3.1: "it is straightforward to
    /// extend the anatomy formulation to other instantiations"). The
    /// published pair still records `criterion.l()` as its `l`, since that
    /// is the breach bound every instantiation targets.
    pub fn publish_with(
        md: &Microdata,
        partition: &Partition,
        criterion: &crate::diversity::DiversityCriterion,
    ) -> Result<Self, CoreError> {
        let l = criterion.l();
        if l < 2 {
            return Err(CoreError::InvalidL(l));
        }
        if partition.len() != md.len() {
            return Err(CoreError::InvalidPartition(format!(
                "partition covers {} rows but microdata has {}",
                partition.len(),
                md.len()
            )));
        }
        for j in 0..partition.group_count() as GroupId {
            let hist = partition.sensitive_histogram(md, j);
            if !criterion.check(&hist) {
                return Err(CoreError::InvalidPartition(format!(
                    "group {j} fails the {criterion:?} criterion"
                )));
            }
        }
        Self::publish_unchecked(md, partition, l)
    }

    /// Produce QIT/ST without the l-diversity check. Used by callers that
    /// have already validated the partition (e.g. `anatomize` output) or
    /// that deliberately study non-diverse partitions.
    pub fn publish_unchecked(
        md: &Microdata,
        partition: &Partition,
        l: usize,
    ) -> Result<Self, CoreError> {
        let qit = md.table().project(md.qi_columns())?;
        let group_ids = partition.group_ids().to_vec();
        let m = partition.group_count();
        let group_sizes: Vec<u32> = partition.group_sizes().iter().map(|&s| s as u32).collect();

        let mut st = Vec::new();
        let mut st_offsets = Vec::with_capacity(m + 1);
        st_offsets.push(0);
        for j in 0..m as GroupId {
            let hist = partition.sensitive_histogram(md, j);
            for (value, count) in hist.nonzero() {
                st.push(StRecord {
                    group: j,
                    value,
                    count: count as u32,
                });
            }
            st_offsets.push(st.len());
        }
        Ok(AnatomizedTables {
            qit,
            group_ids,
            group_sizes,
            st,
            st_offsets,
            l,
        })
    }

    /// Re-assemble a publication from its raw parts (e.g. parsed from a
    /// released file, see [`crate::release`]), validating every invariant
    /// a well-formed release must satisfy:
    ///
    /// * `group_ids` parallels the QIT rows and uses dense ids
    ///   `0..group_count`;
    /// * the ST is sorted by `(group, value)` without duplicates;
    /// * per group, the ST counts sum to the group's QIT size;
    /// * every group satisfies Definition 2 for `l`.
    pub fn from_parts(
        qit: Table,
        group_ids: Vec<GroupId>,
        st: Vec<StRecord>,
        l: usize,
    ) -> Result<Self, CoreError> {
        if l < 2 {
            return Err(CoreError::InvalidL(l));
        }
        if group_ids.len() != qit.len() {
            return Err(CoreError::InvalidPartition(format!(
                "QIT has {} rows but {} group ids",
                qit.len(),
                group_ids.len()
            )));
        }
        let m = group_ids.iter().map(|&g| g as usize + 1).max().unwrap_or(0);
        let mut group_sizes = vec![0u32; m];
        for &g in &group_ids {
            group_sizes[g as usize] += 1;
        }
        if let Some(j) = group_sizes.iter().position(|&s| s == 0) {
            return Err(CoreError::InvalidPartition(format!(
                "group ids are not dense: group {j} has no tuples"
            )));
        }

        // ST structure: sorted, deduplicated, group ids in range.
        for w in st.windows(2) {
            if (w[0].group, w[0].value) >= (w[1].group, w[1].value) {
                return Err(CoreError::InvalidPartition(format!(
                    "ST records out of order or duplicated at group {} value {}",
                    w[1].group, w[1].value
                )));
            }
        }
        let mut st_offsets = Vec::with_capacity(m + 1);
        st_offsets.push(0usize);
        let mut cursor = 0usize;
        for j in 0..m as GroupId {
            let mut mass = 0u64;
            while cursor < st.len() && st[cursor].group == j {
                if st[cursor].count == 0 {
                    return Err(CoreError::InvalidPartition(format!(
                        "ST record with zero count in group {j}"
                    )));
                }
                mass += st[cursor].count as u64;
                cursor += 1;
            }
            if mass != group_sizes[j as usize] as u64 {
                return Err(CoreError::InvalidPartition(format!(
                    "group {j}: ST counts sum to {mass} but QIT has {} tuples",
                    group_sizes[j as usize]
                )));
            }
            st_offsets.push(cursor);
        }
        if cursor != st.len() {
            return Err(CoreError::InvalidPartition(format!(
                "ST references group {} beyond the QIT's {m} groups",
                st[cursor].group
            )));
        }

        let tables = AnatomizedTables {
            qit,
            group_ids,
            group_sizes,
            st,
            st_offsets,
            l,
        };
        // Definition 2, from the ST alone.
        for j in 0..m as GroupId {
            let size = tables.group_size(j) as usize;
            if let Some(max) = tables.st_of(j).iter().map(|r| r.count as usize).max() {
                if max * l > size {
                    return Err(CoreError::InvalidPartition(format!(
                        "group {j} is not {l}-diverse: a value occurs {max} times in {size} tuples"
                    )));
                }
            }
        }
        Ok(tables)
    }

    /// The diversity parameter the tables were published under.
    #[inline]
    pub fn l(&self) -> usize {
        self.l
    }

    /// Number of QIT rows (`n`).
    #[inline]
    pub fn len(&self) -> usize {
        self.group_ids.len()
    }

    /// Whether the publication is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.group_ids.is_empty()
    }

    /// Number of QI attributes (`d`).
    #[inline]
    pub fn qi_count(&self) -> usize {
        self.qit.width()
    }

    /// Number of QI-groups (`m`).
    #[inline]
    pub fn group_count(&self) -> usize {
        self.group_sizes.len()
    }

    /// The QI part of the QIT as a table (columns in microdata QI order).
    #[inline]
    pub fn qi_table(&self) -> &Table {
        &self.qit
    }

    /// Raw code array of the i-th QI attribute.
    #[inline]
    pub fn qi_codes(&self, i: usize) -> &[u32] {
        self.qit.column(i)
    }

    /// Domain cardinality of the i-th QI attribute (the QIT keeps the
    /// microdata's QI schema, so this matches `Microdata::qi_domain_size`).
    pub fn qi_domain_size(&self, i: usize) -> u32 {
        self.qit
            .schema()
            .attribute(i)
            .expect("QI index validated by caller")
            .domain_size()
    }

    /// The Group-ID column of the QIT (0-based ids, parallel to rows).
    #[inline]
    pub fn group_ids(&self) -> &[GroupId] {
        &self.group_ids
    }

    /// `|QI_j|` — size of group `j`.
    #[inline]
    pub fn group_size(&self, j: GroupId) -> u32 {
        self.group_sizes[j as usize]
    }

    /// All ST records, sorted by `(group, value)`.
    #[inline]
    pub fn st_records(&self) -> &[StRecord] {
        &self.st
    }

    /// ST records of group `j`.
    #[inline]
    pub fn st_of(&self, j: GroupId) -> &[StRecord] {
        &self.st[self.st_offsets[j as usize]..self.st_offsets[j as usize + 1]]
    }

    /// `c_j(v)`: count of sensitive value `v` in group `j` (0 when absent).
    pub fn count_in_group(&self, j: GroupId, v: Value) -> u32 {
        self.st_of(j)
            .binary_search_by_key(&v, |r| r.value)
            .map(|i| self.st_of(j)[i].count)
            .unwrap_or(0)
    }

    /// Total mass in group `j` of sensitive values accepted by `pred` —
    /// the inner sum of the anatomy query estimator (Section 1.2).
    pub fn sensitive_mass(&self, j: GroupId, pred: impl Fn(Value) -> bool) -> u64 {
        self.st_of(j)
            .iter()
            .filter(|r| pred(r.value))
            .map(|r| r.count as u64)
            .sum()
    }

    /// Render the QIT like the paper's Table 3a (1-based group ids,
    /// attribute labels, at most `limit` rows).
    pub fn format_qit(&self, limit: usize) -> String {
        let mut out = String::new();
        let names = self.qit.schema().names().join("\t");
        let _ = writeln!(out, "row#\t{names}\tGroup-ID");
        for (r, t) in self.qit.tuples().enumerate().take(limit) {
            let _ = writeln!(
                out,
                "{}\t{}\t{}",
                r + 1,
                t.labeled().join("\t"),
                self.group_ids[r] + 1
            );
        }
        if self.len() > limit {
            let _ = writeln!(out, "... ({} more rows)", self.len() - limit);
        }
        out
    }

    /// Render the ST like the paper's Table 3b, using `label` to name
    /// sensitive values.
    pub fn format_st(&self, label: impl Fn(Value) -> String) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "Group-ID\tAs\tCount");
        for r in &self.st {
            let _ = writeln!(out, "{}\t{}\t{}", r.group + 1, label(r.value), r.count);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anatomy_tables::{Attribute, AttributeKind, Schema, TableBuilder};

    /// The paper's Table 1 (ages, gender, zip in thousands, disease).
    fn paper_md() -> Microdata {
        let schema = Schema::new(vec![
            Attribute::numerical("Age", 100),
            Attribute::with_labels(
                "Sex",
                AttributeKind::Categorical,
                vec!["M".into(), "F".into()],
            ),
            Attribute::numerical("Zipcode", 60),
            Attribute::with_labels(
                "Disease",
                AttributeKind::Categorical,
                vec![
                    "bronchitis".into(),
                    "dyspepsia".into(),
                    "flu".into(),
                    "gastritis".into(),
                    "pneumonia".into(),
                ],
            ),
        ])
        .unwrap();
        let mut b = TableBuilder::new(schema);
        for row in [
            [23, 0, 11, 4],
            [27, 0, 13, 1],
            [35, 0, 59, 1],
            [59, 0, 12, 4],
            [61, 1, 54, 2],
            [65, 1, 25, 3],
            [65, 1, 25, 2],
            [70, 1, 30, 0],
        ] {
            b.push_row(&row).unwrap();
        }
        Microdata::with_leading_qi(b.finish(), 3).unwrap()
    }

    fn paper_partition() -> Partition {
        Partition::new(vec![vec![0, 1, 2, 3], vec![4, 5, 6, 7]], 8).unwrap()
    }

    #[test]
    fn publish_matches_definition_3() {
        let md = paper_md();
        let t = AnatomizedTables::publish(&md, &paper_partition(), 2).unwrap();
        assert_eq!(t.len(), 8);
        assert_eq!(t.qi_count(), 3);
        assert_eq!(t.group_count(), 2);
        assert_eq!(t.group_size(0), 4);
        // QIT keeps exact values: row 0 has age 23.
        assert_eq!(t.qi_codes(0)[0], 23);
        assert_eq!(t.group_ids(), &[0, 0, 0, 0, 1, 1, 1, 1]);
        // ST of group 1 (paper's Table 3b): dyspepsia 2, pneumonia 2.
        let st0 = t.st_of(0);
        assert_eq!(st0.len(), 2);
        assert_eq!(
            st0[0],
            StRecord {
                group: 0,
                value: Value(1),
                count: 2
            }
        );
        assert_eq!(
            st0[1],
            StRecord {
                group: 0,
                value: Value(4),
                count: 2
            }
        );
        // ST of group 2: bronchitis 1, flu 2, gastritis 1.
        let st1 = t.st_of(1);
        assert_eq!(st1.len(), 3);
        assert_eq!(
            st1[0],
            StRecord {
                group: 1,
                value: Value(0),
                count: 1
            }
        );
        assert_eq!(
            st1[1],
            StRecord {
                group: 1,
                value: Value(2),
                count: 2
            }
        );
        assert_eq!(
            st1[2],
            StRecord {
                group: 1,
                value: Value(3),
                count: 1
            }
        );
    }

    #[test]
    fn count_in_group_and_mass() {
        let md = paper_md();
        let t = AnatomizedTables::publish(&md, &paper_partition(), 2).unwrap();
        assert_eq!(t.count_in_group(0, Value(4)), 2); // pneumonia in group 1
        assert_eq!(t.count_in_group(0, Value(2)), 0); // flu absent from group 1
        assert_eq!(t.sensitive_mass(1, |v| v == Value(2) || v == Value(3)), 3);
        assert_eq!(t.sensitive_mass(0, |_| true), 4);
    }

    #[test]
    fn publish_rejects_non_diverse_partition() {
        let md = paper_md();
        // Group {0, 3} holds two pneumonia tuples: not 2-diverse.
        let bad = Partition::new(vec![vec![0, 3], vec![1, 2], vec![4, 5], vec![6, 7]], 8).unwrap();
        assert!(matches!(
            AnatomizedTables::publish(&md, &bad, 2),
            Err(CoreError::InvalidPartition(_))
        ));
        // publish_unchecked accepts it regardless.
        assert!(AnatomizedTables::publish_unchecked(&md, &bad, 2).is_ok());
    }

    #[test]
    fn publish_with_alternative_instantiations() {
        use crate::diversity::DiversityCriterion;
        let md = paper_md();
        let p = paper_partition();
        // Group 1 is uniform over 2 values (entropy ln 2): entropy
        // 2-diversity holds; group 2 has counts {1, 2, 1} (entropy ~1.04
        // < ln 3), so entropy 3-diversity fails.
        assert!(
            AnatomizedTables::publish_with(&md, &p, &DiversityCriterion::Entropy { l: 2 }).is_ok()
        );
        assert!(
            AnatomizedTables::publish_with(&md, &p, &DiversityCriterion::Entropy { l: 3 }).is_err()
        );
        // Recursive (c=3, l=2): group 1 counts [2, 2]: 2 < 3*2 ok; group 2
        // counts [2, 1, 1]: 2 < 3*(1+1+... tail from position 2) = 3*2 ok.
        assert!(AnatomizedTables::publish_with(
            &md,
            &p,
            &DiversityCriterion::Recursive { c: 3.0, l: 2 }
        )
        .is_ok());
    }

    #[test]
    fn publish_rejects_length_mismatch_and_bad_l() {
        let md = paper_md();
        let short = Partition::new(vec![vec![0, 1]], 2).unwrap();
        assert!(AnatomizedTables::publish(&md, &short, 2).is_err());
        assert!(matches!(
            AnatomizedTables::publish(&md, &paper_partition(), 1),
            Err(CoreError::InvalidL(1))
        ));
    }

    #[test]
    fn formatting_matches_paper_tables() {
        let md = paper_md();
        let t = AnatomizedTables::publish(&md, &paper_partition(), 2).unwrap();
        let qit = t.format_qit(10);
        assert!(qit.contains("Group-ID"));
        assert!(qit.lines().nth(1).unwrap().starts_with("1\t23\tM\t11"));
        let schema = md.table().schema().clone();
        let disease = schema.attribute(3).unwrap().clone();
        let st = t.format_st(|v| disease.label(v));
        assert!(st.contains("dyspepsia\t2"));
        assert!(st.contains("bronchitis\t1"));
    }

    #[test]
    fn st_is_sorted_by_group_then_value() {
        let md = paper_md();
        let t = AnatomizedTables::publish(&md, &paper_partition(), 2).unwrap();
        let recs = t.st_records();
        for w in recs.windows(2) {
            assert!((w[0].group, w[0].value) < (w[1].group, w[1].value));
        }
        // Counts over all groups sum to n.
        let total: u32 = recs.iter().map(|r| r.count).sum();
        assert_eq!(total as usize, t.len());
    }
}
