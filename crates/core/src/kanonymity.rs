//! k-anonymity — the weaker guarantee the paper contrasts with
//! l-diversity (Section 2).
//!
//! A partition is *k-anonymous* when every QI-group has at least `k`
//! tuples. Machanavajjhala et al. (the paper's ref [10]) showed that this
//! does not bound the adversary: a group whose tuples all share one
//! sensitive value (a *homogeneous* group) is breached with certainty no
//! matter how large `k` is. [`homogeneity_breach`] computes the actual
//! worst-case breach probability a partition permits, making the
//! k-anonymity-vs-l-diversity gap measurable (see the
//! `homogeneity_attack` example).

use crate::error::CoreError;
use crate::partition::Partition;
use anatomy_tables::Microdata;

/// Whether every QI-group has at least `k` tuples.
pub fn partition_is_k_anonymous(p: &Partition, k: usize) -> bool {
    p.groups().iter().all(|g| g.len() >= k)
}

/// Validate k-anonymity, naming the first undersized group.
pub fn check_k_anonymous(p: &Partition, k: usize) -> Result<(), CoreError> {
    if k == 0 {
        return Err(CoreError::InvalidL(0));
    }
    for (j, g) in p.groups().iter().enumerate() {
        if g.len() < k {
            return Err(CoreError::InvalidPartition(format!(
                "group {j} has {} < k = {k} tuples",
                g.len()
            )));
        }
    }
    Ok(())
}

/// The worst-case sensitive-value breach probability the partition
/// permits: `max_j c_j(v*) / |QI_j|` over all groups `j` and their modal
/// values `v*` (Equation 2 applied to the most exposed tuple).
///
/// For an l-diverse partition this is at most `1/l` (Corollary 1); for a
/// merely k-anonymous partition it can reach 1.0 — the homogeneity attack.
pub fn homogeneity_breach(md: &Microdata, p: &Partition) -> f64 {
    let mut worst: f64 = 0.0;
    for j in 0..p.group_count() as u32 {
        let hist = p.sensitive_histogram(md, j);
        if let Some((_, c)) = hist.max() {
            worst = worst.max(c as f64 / hist.total() as f64);
        }
    }
    worst
}

/// The effective diversity of a partition: the largest `l` for which it is
/// l-diverse (`⌊1 / homogeneity_breach⌋`), or `None` for an empty
/// partition.
pub fn effective_l(md: &Microdata, p: &Partition) -> Option<usize> {
    let breach = homogeneity_breach(md, p);
    if breach == 0.0 {
        None
    } else {
        Some((1.0 / breach).floor() as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anatomy_tables::{Attribute, Schema, TableBuilder};

    fn md(codes: &[u32]) -> Microdata {
        let schema = Schema::new(vec![
            Attribute::numerical("A", 100),
            Attribute::categorical("S", 5),
        ])
        .unwrap();
        let mut b = TableBuilder::new(schema);
        for (i, &c) in codes.iter().enumerate() {
            b.push_row(&[i as u32, c]).unwrap();
        }
        Microdata::with_leading_qi(b.finish(), 1).unwrap()
    }

    #[test]
    fn k_anonymity_counts_group_sizes() {
        let p = Partition::new(vec![vec![0, 1, 2, 3], vec![4, 5, 6, 7]], 8).unwrap();
        assert!(partition_is_k_anonymous(&p, 4));
        assert!(!partition_is_k_anonymous(&p, 5));
        assert!(check_k_anonymous(&p, 4).is_ok());
        assert!(check_k_anonymous(&p, 5).is_err());
        assert!(check_k_anonymous(&p, 0).is_err());
    }

    #[test]
    fn homogeneous_group_is_fully_breached() {
        // Group {0..3} all share value 0: 4-anonymous, breach 100%.
        let data = md(&[0, 0, 0, 0, 1, 2, 3, 4]);
        let p = Partition::new(vec![vec![0, 1, 2, 3], vec![4, 5, 6, 7]], 8).unwrap();
        assert!(partition_is_k_anonymous(&p, 4));
        assert_eq!(homogeneity_breach(&data, &p), 1.0);
        assert_eq!(effective_l(&data, &p), Some(1));
    }

    #[test]
    fn diverse_partition_bounds_breach() {
        // The paper's Table 1 partition: 2-diverse -> breach 50%.
        let data = md(&[0, 1, 1, 0, 2, 3, 2, 4]);
        let p = Partition::new(vec![vec![0, 1, 2, 3], vec![4, 5, 6, 7]], 8).unwrap();
        assert_eq!(homogeneity_breach(&data, &p), 0.5);
        assert_eq!(effective_l(&data, &p), Some(2));
    }

    #[test]
    fn empty_partition_has_no_effective_l() {
        let data = md(&[]);
        let p = Partition::new(vec![], 0).unwrap();
        assert_eq!(homogeneity_breach(&data, &p), 0.0);
        assert_eq!(effective_l(&data, &p), None);
    }

    #[test]
    fn k_anonymity_does_not_imply_diversity_but_diversity_implies_size() {
        // Any l-diverse group needs at least l tuples (each of the >= l
        // distinct value classes contributes >= 1), so l-diversity implies
        // l-anonymity — the converse fails (previous test).
        let data = md(&[0, 1, 2, 3, 4, 0, 1, 2]);
        let p = Partition::new(vec![vec![0, 1, 2, 3], vec![4, 5, 6, 7]], 8).unwrap();
        assert!(p.is_l_diverse(&data, 4));
        assert!(partition_is_k_anonymous(&p, 4));
    }
}
