//! The `Anatomize` algorithm (Figure 3 of the paper), in-memory variant.
//!
//! `Anatomize` computes an l-diverse partition in two phases:
//!
//! 1. **Group creation** (Lines 3–8): hash tuples into buckets by sensitive
//!    value; while at least `l` buckets are non-empty, draw one random
//!    tuple from each of the `l` *currently largest* buckets to form a new
//!    QI-group. Property 1: under the eligibility condition, every bucket
//!    ends with at most one tuple.
//! 2. **Residue assignment** (Lines 9–12): each of the ≤ l−1 leftover
//!    tuples joins a random existing group that does not yet contain its
//!    sensitive value. Property 2: such a group always exists.
//!
//! The result (Property 3) is a partition where every group has at least
//! `l` tuples, *all with distinct sensitive values* — hence l-diverse — and
//! by Theorem 4 its re-construction error is within a factor `1 + 1/n` of
//! the lower bound of Theorem 2.
//!
//! # The frequency ladder
//!
//! Line 5 needs the `l` largest buckets every round. The obvious
//! implementation re-sorts the non-empty bucket list per round —
//! `O((n/l)·λ log λ)` over the run, which dominates once the sensitive
//! domain λ reaches the paper's Occupation/Salary sizes. [`anatomize`]
//! instead maintains a *frequency ladder* (the LFU frequency-list trick):
//! buckets are grouped into size classes kept in descending size order,
//! each class holding its bucket values in ascending order. A round then
//!
//! * reads the selection straight off the ladder front (the prefix of the
//!   ladder IS the sort order: size-descending, value-ascending on ties),
//! * decrements the fully-drawn classes in place (`O(1)` each), and
//! * splits the boundary class, re-linking at most two equal-size
//!   neighbors (value-order merges with an `O(draw)` fast path when the
//!   incoming run does not interleave).
//!
//! Group creation is `O(l)` per round plus merge work bounded by the class
//! structure — `O(n + λ log λ)` total on the paper's workloads — while
//! producing **bit-for-bit** the partition of the sort-based
//! implementation, which survives as [`anatomize_reference`], the
//! differential-testing oracle and benchmark baseline.
//!
//! This module is the fast in-memory implementation used by the accuracy
//! experiments (Figures 4–7); [`crate::anatomize_io`] is the external,
//! I/O-accounted variant matching Theorem 3's cost model.

use crate::diversity::check_eligibility;
use crate::error::CoreError;
use crate::partition::Partition;
use anatomy_tables::Microdata;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};
use std::collections::VecDeque;

/// How group creation picks its `l` buckets each iteration.
///
/// The paper's Line 5 takes the `l` **largest** buckets; that choice is
/// what makes Property 1 (at most `l − 1` residue tuples) true. The
/// round-robin alternative exists for the ablation in `repro strategy`:
/// on skewed data it leaves a dominant bucket undrained and fails where
/// `Anatomize` succeeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BucketStrategy {
    /// The paper's rule: the `l` currently largest buckets.
    #[default]
    LargestFirst,
    /// Ablation arm: the next `l` non-empty buckets in cyclic value order.
    RoundRobin,
}

/// Configuration for [`anatomize`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnatomizeConfig {
    /// Diversity parameter `l >= 2`.
    pub l: usize,
    /// Seed for the random choices (which tuple leaves a bucket, which
    /// group receives a residue). Fixing it makes runs reproducible.
    pub seed: u64,
    /// Bucket selection rule (see [`BucketStrategy`]).
    pub strategy: BucketStrategy,
}

impl AnatomizeConfig {
    /// Configuration with the given `l`, a fixed default seed, and the
    /// paper's largest-first strategy.
    pub fn new(l: usize) -> Self {
        AnatomizeConfig {
            l,
            seed: 0xA7A7,
            strategy: BucketStrategy::LargestFirst,
        }
    }

    /// Replace the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replace the bucket strategy (ablation only; the default reproduces
    /// the paper).
    pub fn with_strategy(mut self, strategy: BucketStrategy) -> Self {
        self.strategy = strategy;
        self
    }
}

/// Line 2: hash by sensitive value, one bucket per value. Shuffling each
/// bucket once up front makes `pop()` equivalent to "remove an arbitrary
/// (random) tuple" (Line 7).
#[doc(hidden)]
pub fn shuffled_buckets(md: &Microdata, rng: &mut StdRng) -> Vec<Vec<u32>> {
    let domain = md.sensitive_domain_size() as usize;
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); domain];
    for (r, &code) in md.sensitive_codes().iter().enumerate() {
        buckets[code as usize].push(r as u32);
    }
    for b in &mut buckets {
        b.shuffle(rng);
    }
    buckets
}

/// Output of the group-creation phase (Lines 3–8), before residues.
///
/// `residual` lists the buckets still non-empty after the last round, in
/// the exact order the residue loop (Lines 9–12) must visit them: the
/// order fixes which `rng` draw serves which leftover tuple, so it is part
/// of the bit-for-bit contract between [`anatomize`] and
/// [`anatomize_reference`].
#[doc(hidden)]
#[derive(Debug)]
pub struct GroupCreation {
    /// Row ids per QI-group, in selection order.
    pub groups: Vec<Vec<u32>>,
    /// Sensitive values present in each group, ascending.
    pub group_values: Vec<Vec<u32>>,
    /// Still-non-empty bucket values, in residue-visit order.
    pub residual: Vec<u32>,
}

/// One size class of the frequency ladder: every bucket in `members`
/// currently holds exactly `size` tuples; `members` ascends by value.
struct Class {
    size: usize,
    members: VecDeque<u32>,
}

/// Value-order merge of two ascending runs, with `O(shorter)` fast paths
/// when the runs do not interleave (the common case: a freshly split-off
/// draw joins a class it chains onto).
fn merge_class_members(left: &mut VecDeque<u32>, mut right: VecDeque<u32>) {
    if right.is_empty() {
        return;
    }
    if left.is_empty() {
        *left = right;
        return;
    }
    if left.back() < right.front() {
        left.append(&mut right);
        return;
    }
    if right.back() < left.front() {
        std::mem::swap(left, &mut right);
        left.append(&mut right);
        return;
    }
    let mut merged = VecDeque::with_capacity(left.len() + right.len());
    loop {
        match (left.front(), right.front()) {
            (Some(a), Some(b)) => {
                if a < b {
                    merged.push_back(left.pop_front().expect("front exists"));
                } else {
                    merged.push_back(right.pop_front().expect("front exists"));
                }
            }
            (Some(_), None) => {
                merged.append(left);
                break;
            }
            (None, _) => {
                merged.append(&mut right);
                break;
            }
        }
    }
    *left = merged;
}

/// Outcome of a size-only schedule run ([`ladder_schedule`] /
/// [`round_robin_schedule`]): how many groups were formed and which
/// buckets remain non-empty, in residue-visit order.
#[doc(hidden)]
#[derive(Debug)]
pub struct ScheduleOutcome {
    /// Number of groups emitted.
    pub groups: u32,
    /// Still-non-empty bucket values, in residue-visit order.
    pub residual: Vec<u32>,
}

/// The frequency-ladder group schedule, driven by bucket **sizes** alone.
///
/// Group creation's control flow never looks at tuples — only at how many
/// each bucket holds — so the whole selection sequence is a function of
/// `sizes`. This function runs that sequence with O(λ) resident state,
/// calling `emit` once per group with the drawn bucket values in **draw
/// order** (size-descending, value-ascending on ties). [`create_groups_ladder`]
/// applies it to in-memory buckets; the sharded out-of-core path
/// (`anatomize_sharded`) replays the identical schedule against on-disk
/// bucket files, which is what makes the two engines bit-identical.
#[doc(hidden)]
pub fn ladder_schedule(sizes: &[usize], l: usize, mut emit: impl FnMut(&[u32])) -> ScheduleOutcome {
    // Build the ladder: one sort of the non-empty bucket list, split into
    // runs of equal size. Same comparator as the sort-based path, so the
    // first round's selection is trivially identical.
    let mut vals: Vec<u32> = (0..sizes.len() as u32)
        .filter(|&v| sizes[v as usize] > 0)
        .collect();
    vals.sort_unstable_by(|&a, &b| sizes[b as usize].cmp(&sizes[a as usize]).then(a.cmp(&b)));
    let mut ladder: VecDeque<Class> = VecDeque::new();
    for &v in &vals {
        let size = sizes[v as usize];
        match ladder.back_mut() {
            Some(c) if c.size == size => c.members.push_back(v),
            _ => ladder.push_back(Class {
                size,
                members: VecDeque::from(vec![v]),
            }),
        }
    }
    let mut nonempty = vals.len();

    let mut groups = 0u32;
    // Sorted sensitive values of the most recent round, for reconstructing
    // the residue-visit order afterwards.
    let mut last_selected: Vec<u32> = Vec::new();
    let mut values: Vec<u32> = Vec::with_capacity(l);

    while nonempty >= l {
        // Selection: the ladder prefix covering l buckets. `full` classes
        // are drawn whole; `m` more come from the boundary class (its
        // value-ascending front, matching the sort's tie-break).
        let mut remaining = l;
        let mut full = 0usize;
        let mut m = 0usize;
        for c in ladder.iter() {
            if c.members.len() <= remaining {
                remaining -= c.members.len();
                full += 1;
                if remaining == 0 {
                    break;
                }
            } else {
                m = remaining;
                break;
            }
        }

        values.clear();
        for c in ladder.iter().take(full) {
            for &v in &c.members {
                values.push(v);
            }
        }
        if m > 0 {
            for &v in ladder[full].members.iter().take(m) {
                values.push(v);
            }
        }
        emit(&values);
        groups += 1;
        values.sort_unstable();
        last_selected.clone_from(&values);

        // Restructure. Fully drawn classes just step down one size; the
        // strict descending order among them is preserved.
        for c in ladder.iter_mut().take(full) {
            c.size -= 1;
        }
        // Split the boundary class: the drawn front becomes a new class
        // one size below, seated right after the remainder.
        let mut split: Option<Class> = None;
        if m > 0 {
            let boundary = &mut ladder[full];
            let drawn: VecDeque<u32> = boundary.members.drain(..m).collect();
            if boundary.size > 1 {
                split = Some(Class {
                    size: boundary.size - 1,
                    members: drawn,
                });
            } else {
                // Drawn buckets are now empty and leave the ladder.
                nonempty -= m;
            }
        } else if full > 0 && ladder[full - 1].size == 0 {
            // A fully drawn size-1 class emptied out. Sizes descend
            // strictly, so it can only be the ladder tail.
            debug_assert_eq!(full, ladder.len());
            let dead = ladder.pop_back().expect("class exists");
            nonempty -= dead.members.len();
            full -= 1;
        }
        // At most two equal-size adjacencies can appear; everything else
        // keeps its strict descending order. First: the last fully drawn
        // class against the first untouched one (the boundary remainder,
        // or the first unselected class when the draw ended on a class
        // boundary).
        let mut insert_at = full + 1;
        if full > 0 && full < ladder.len() && ladder[full - 1].size == ladder[full].size {
            let right = ladder.remove(full).expect("index in bounds");
            merge_class_members(&mut ladder[full - 1].members, right.members);
            insert_at = full;
        }
        // Second: the split-off class against its successor.
        if let Some(split) = split {
            if insert_at < ladder.len() && ladder[insert_at].size == split.size {
                let successor = &mut ladder[insert_at];
                let tail = std::mem::take(&mut successor.members);
                successor.members = split.members;
                merge_class_members(&mut successor.members, tail);
            } else {
                ladder.insert(insert_at, split);
            }
        }
    }

    // Reconstruct the residue-visit order of the sort-based path: its
    // non-empty list was last sorted at the top of the final round, i.e.
    // by (pre-draw size descending, value ascending). A bucket's pre-draw
    // size is its current size (the size of its ladder class) plus one if
    // the final round drew from it. (Eligibility guarantees at least one
    // round whenever n > 0, so the list is never left in its initial
    // value-ascending build order.)
    let mut residual: Vec<(usize, u32)> = ladder
        .iter()
        .flat_map(|c| c.members.iter().map(move |&v| (c.size, v)))
        .collect();
    let pre_size = |(size, v): (usize, u32)| -> usize {
        size + usize::from(last_selected.binary_search(&v).is_ok())
    };
    residual.sort_unstable_by(|&a, &b| pre_size(b).cmp(&pre_size(a)).then(a.1.cmp(&b.1)));

    ScheduleOutcome {
        groups,
        residual: residual.into_iter().map(|(_, v)| v).collect(),
    }
}

/// Group creation with the frequency ladder (the paper's largest-first
/// rule). Produces the identical group sequence, per-group tuple order and
/// residue-visit order as [`create_groups_sorted`] for every input.
#[doc(hidden)]
pub fn create_groups_ladder(buckets: &mut [Vec<u32>], l: usize) -> GroupCreation {
    let sizes: Vec<usize> = buckets.iter().map(Vec::len).collect();
    let n: usize = sizes.iter().sum();
    let mut groups: Vec<Vec<u32>> = Vec::with_capacity(n / l.max(1));
    let mut group_values: Vec<Vec<u32>> = Vec::with_capacity(n / l.max(1));
    let outcome = ladder_schedule(&sizes, l, |drawn| {
        // Drawn values arrive in draw order; pop one tuple from each. The
        // group keeps draw order, the value list is kept sorted.
        let mut group = Vec::with_capacity(drawn.len());
        for &v in drawn {
            group.push(buckets[v as usize].pop().expect("bucket in ladder"));
        }
        let mut values = drawn.to_vec();
        values.sort_unstable();
        groups.push(group);
        group_values.push(values);
    });
    GroupCreation {
        groups,
        group_values,
        residual: outcome.residual,
    }
}

/// Group creation by re-sorting the non-empty bucket list every round —
/// the reference implementation the ladder is differentially tested and
/// benchmarked against. `O(λ log λ)` per round.
#[doc(hidden)]
pub fn create_groups_sorted(buckets: &mut [Vec<u32>], l: usize) -> GroupCreation {
    let n: usize = buckets.iter().map(Vec::len).sum();
    let mut groups: Vec<Vec<u32>> = Vec::with_capacity(n / l.max(1));
    let mut group_values: Vec<Vec<u32>> = Vec::with_capacity(n / l.max(1));
    let mut nonempty: Vec<u32> = (0..buckets.len() as u32)
        .filter(|&v| !buckets[v as usize].is_empty())
        .collect();

    while nonempty.len() >= l {
        // Line 5: S = the l largest buckets *currently*.
        nonempty.sort_unstable_by(|&a, &b| {
            buckets[b as usize]
                .len()
                .cmp(&buckets[a as usize].len())
                .then(a.cmp(&b))
        });
        let mut group = Vec::with_capacity(l);
        let mut values = Vec::with_capacity(l);
        for &v in nonempty.iter().take(l) {
            group.push(buckets[v as usize].pop().expect("bucket in non-empty list"));
            values.push(v);
        }
        values.sort_unstable();
        groups.push(group);
        group_values.push(values);
        nonempty.retain(|&v| !buckets[v as usize].is_empty());
    }

    GroupCreation {
        groups,
        group_values,
        residual: nonempty,
    }
}

/// The round-robin group schedule, driven by bucket sizes alone — the
/// size-only counterpart of [`ladder_schedule`] for the ablation arm.
/// Calls `emit` once per group with the drawn values in draw (rotated
/// cyclic) order.
#[doc(hidden)]
pub fn round_robin_schedule(
    sizes: &[usize],
    l: usize,
    mut emit: impl FnMut(&[u32]),
) -> ScheduleOutcome {
    let mut remaining: Vec<usize> = sizes.to_vec();
    let mut nonempty: Vec<u32> = (0..sizes.len() as u32)
        .filter(|&v| sizes[v as usize] > 0)
        .collect();

    let mut groups = 0u32;
    let mut values: Vec<u32> = Vec::with_capacity(l);
    let mut cursor = 0usize;
    while nonempty.len() >= l {
        // Rotate so each iteration starts after the previous one's first
        // pick.
        nonempty.sort_unstable();
        cursor %= nonempty.len();
        nonempty.rotate_left(cursor);
        cursor += 1;
        values.clear();
        for &v in nonempty.iter().take(l) {
            remaining[v as usize] -= 1;
            values.push(v);
        }
        emit(&values);
        groups += 1;
        nonempty.retain(|&v| remaining[v as usize] > 0);
    }

    ScheduleOutcome {
        groups,
        residual: nonempty,
    }
}

/// Group creation with the round-robin ablation rule (shared by both
/// [`anatomize`] and [`anatomize_reference`]; it is not a hot path).
fn create_groups_round_robin(buckets: &mut [Vec<u32>], l: usize) -> GroupCreation {
    let sizes: Vec<usize> = buckets.iter().map(Vec::len).collect();
    let n: usize = sizes.iter().sum();
    let mut groups: Vec<Vec<u32>> = Vec::with_capacity(n / l.max(1));
    let mut group_values: Vec<Vec<u32>> = Vec::with_capacity(n / l.max(1));
    let outcome = round_robin_schedule(&sizes, l, |drawn| {
        let mut group = Vec::with_capacity(drawn.len());
        for &v in drawn {
            group.push(buckets[v as usize].pop().expect("bucket in non-empty list"));
        }
        let mut values = drawn.to_vec();
        values.sort_unstable();
        groups.push(group);
        group_values.push(values);
    });
    GroupCreation {
        groups,
        group_values,
        residual: outcome.residual,
    }
}

/// Lines 9-12: residue assignment. At most l-1 tuples remain (Property 1
/// guarantees one per bucket under eligibility; the loop below does not
/// rely on that and drains whatever is left).
///
/// The candidate list (groups not containing the residue's sensitive
/// value) is built **once per sensitive value** and kept current by
/// deleting each chosen group, instead of being rebuilt from scratch for
/// every leftover tuple: assigning value `v` to group `j` changes no other
/// group's eligibility for `v`, so the maintained list stays equal to a
/// recomputation — same candidates, same rng draws, same output.
fn assign_residues(
    rng: &mut StdRng,
    buckets: &mut [Vec<u32>],
    residual: &[u32],
    groups: &mut [Vec<u32>],
    group_values: &mut [Vec<u32>],
) -> Result<(), CoreError> {
    for &v in residual {
        let mut candidates: Vec<usize> = Vec::new();
        let mut built = false;
        while let Some(tuple) = buckets[v as usize].pop() {
            if !built {
                // S' = groups that do not contain sensitive value v.
                candidates = group_values
                    .iter()
                    .enumerate()
                    .filter(|(_, vals)| vals.binary_search(&v).is_err())
                    .map(|(j, _)| j)
                    .collect();
                built = true;
            }
            if candidates.is_empty() {
                return Err(CoreError::ResidueUnassignable { sensitive_code: v });
            }
            let pick = rng.random_range(0..candidates.len());
            let j = candidates.remove(pick);
            groups[j].push(tuple);
            let pos = group_values[j].binary_search(&v).unwrap_err();
            group_values[j].insert(pos, v);
        }
    }
    Ok(())
}

fn anatomize_with(
    md: &Microdata,
    config: &AnatomizeConfig,
    create_largest_first: impl FnOnce(&mut [Vec<u32>], usize) -> GroupCreation,
) -> Result<Partition, CoreError> {
    // Phase spans and counters go to the process-wide registry; while it
    // is disabled (the default) each is one relaxed atomic load. They
    // observe timing only — nothing here feeds back into the rng or the
    // partition, which the instrumented-vs-disabled differential test
    // under tests/observability.rs pins bit-for-bit.
    let obs = anatomy_obs::global();
    let _run = obs.span("anatomize");

    let l = config.l;
    check_eligibility(md, l)?;
    let n = md.len();
    if n == 0 {
        return Partition::new(vec![], 0);
    }

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut buckets = {
        let _phase = obs.span("bucketize");
        shuffled_buckets(md, &mut rng)
    };

    let mut creation = {
        let _phase = obs.span("group_creation");
        match config.strategy {
            BucketStrategy::LargestFirst => create_largest_first(&mut buckets, l),
            BucketStrategy::RoundRobin => create_groups_round_robin(&mut buckets, l),
        }
    };
    {
        let _phase = obs.span("residue");
        assign_residues(
            &mut rng,
            &mut buckets,
            &creation.residual,
            &mut creation.groups,
            &mut creation.group_values,
        )?;
    }

    obs.counter("core.anatomize_runs").incr();
    obs.counter("core.rows_anatomized").add(n as u64);
    obs.counter("core.groups_created")
        .add(creation.groups.len() as u64);
    obs.counter("core.residue_values")
        .add(creation.residual.len() as u64);

    Partition::new(creation.groups, n)
}

/// Compute an l-diverse partition of `md` with the `Anatomize` algorithm.
///
/// Fails with [`CoreError::NotEligible`] when no l-diverse partition exists
/// (some sensitive value occurs more than `n/l` times) and with
/// [`CoreError::InvalidL`] for `l < 2`.
///
/// Group creation runs on the frequency ladder (see the module docs);
/// [`anatomize_reference`] is the sort-based oracle it is differentially
/// tested against.
///
/// ```
/// use anatomy_core::{anatomize, AnatomizeConfig};
/// use anatomy_tables::{Attribute, Microdata, Schema, TableBuilder};
///
/// let schema = Schema::new(vec![
///     Attribute::numerical("Age", 100),
///     Attribute::categorical("Disease", 4),
/// ])?;
/// let mut b = TableBuilder::new(schema);
/// for i in 0..12u32 {
///     b.push_row(&[20 + i, i % 4])?;
/// }
/// let md = Microdata::with_leading_qi(b.finish(), 1)?;
///
/// let partition = anatomize(&md, &AnatomizeConfig::new(3))?;
/// assert_eq!(partition.group_count(), 4); // floor(n / l)
/// assert!(partition.is_l_diverse(&md, 3));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn anatomize(md: &Microdata, config: &AnatomizeConfig) -> Result<Partition, CoreError> {
    anatomize_with(md, config, create_groups_ladder)
}

/// [`anatomize`] with sort-based group creation: the original
/// implementation, kept as the differential-testing oracle and the
/// baseline that `bench_anatomize` measures the ladder against. Returns
/// the identical partition for every input and seed — only slower.
pub fn anatomize_reference(
    md: &Microdata,
    config: &AnatomizeConfig,
) -> Result<Partition, CoreError> {
    anatomize_with(md, config, create_groups_sorted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use anatomy_tables::stats::Histogram;
    use anatomy_tables::{Attribute, Schema, TableBuilder};

    fn md_from_sensitive(codes: &[u32], domain: u32) -> Microdata {
        let schema = Schema::new(vec![
            Attribute::numerical("Age", 1000),
            Attribute::categorical("S", domain),
        ])
        .unwrap();
        let mut b = TableBuilder::new(schema);
        for (i, &c) in codes.iter().enumerate() {
            b.push_row(&[(i % 1000) as u32, c]).unwrap();
        }
        Microdata::with_leading_qi(b.finish(), 1).unwrap()
    }

    fn assert_anatomize_invariants(md: &Microdata, p: &Partition, l: usize) {
        // Property 3: every group has >= l tuples, all with distinct
        // sensitive values; group sizes never exceed 2l-1.
        for j in 0..p.group_count() as u32 {
            let rows = p.group(j);
            assert!(rows.len() >= l, "group {j} has {} < l tuples", rows.len());
            assert!(
                rows.len() < 2 * l,
                "group {j} has {} > 2l-1 tuples",
                rows.len()
            );
            let mut values: Vec<u32> = rows
                .iter()
                .map(|&r| md.sensitive_value(r as usize).code())
                .collect();
            values.sort_unstable();
            values.dedup();
            assert_eq!(
                values.len(),
                rows.len(),
                "group {j} has duplicate sensitive values"
            );
        }
        assert!(p.is_l_diverse(md, l));
        // Number of groups is floor(n/l) (proof of Property 1).
        assert_eq!(p.group_count(), md.len() / l);
    }

    #[test]
    fn paper_example_l2() {
        // Table 1's diseases: pneu, dysp, dysp, pneu, flu, gast, flu, bron.
        let md = md_from_sensitive(&[0, 1, 1, 0, 2, 3, 2, 4], 5);
        let p = anatomize(&md, &AnatomizeConfig::new(2)).unwrap();
        assert_anatomize_invariants(&md, &p, 2);
    }

    #[test]
    fn multiple_of_l_gives_exact_groups() {
        let codes: Vec<u32> = (0..60).map(|i| i % 6).collect();
        let md = md_from_sensitive(&codes, 6);
        let p = anatomize(&md, &AnatomizeConfig::new(3)).unwrap();
        assert_anatomize_invariants(&md, &p, 3);
        // n divisible by l: every group has exactly l tuples.
        assert!(p.group_sizes().iter().all(|&s| s == 3));
    }

    #[test]
    fn residues_are_absorbed() {
        // n = 11, l = 3 -> 3 groups, 2 residues -> some group of size 4.
        let codes = [0, 0, 0, 1, 1, 1, 2, 2, 2, 3, 4];
        let md = md_from_sensitive(&codes, 6);
        let p = anatomize(&md, &AnatomizeConfig::new(3)).unwrap();
        assert_anatomize_invariants(&md, &p, 3);
        let total: usize = p.group_sizes().iter().sum();
        assert_eq!(total, 11);
    }

    #[test]
    fn deterministic_in_seed() {
        let codes: Vec<u32> = (0..100).map(|i| (i * 7) % 9).collect();
        let md = md_from_sensitive(&codes, 9);
        let a = anatomize(&md, &AnatomizeConfig::new(4).with_seed(1)).unwrap();
        let b = anatomize(&md, &AnatomizeConfig::new(4).with_seed(1)).unwrap();
        let c = anatomize(&md, &AnatomizeConfig::new(4).with_seed(2)).unwrap();
        assert_eq!(a, b);
        // With 100 tuples a different seed virtually surely differs.
        assert_ne!(a, c);
    }

    #[test]
    fn ineligible_input_rejected() {
        let md = md_from_sensitive(&[0, 0, 0, 1], 3);
        assert!(matches!(
            anatomize(&md, &AnatomizeConfig::new(2)),
            Err(CoreError::NotEligible { .. })
        ));
    }

    #[test]
    fn empty_microdata_gives_empty_partition() {
        let md = md_from_sensitive(&[], 3);
        let p = anatomize(&md, &AnatomizeConfig::new(2)).unwrap();
        assert!(p.is_empty());
    }

    #[test]
    fn eligibility_boundary_succeeds() {
        // max_count * l == n exactly.
        let codes = [0, 0, 0, 1, 1, 2]; // max 3, n 6, l 2
        let md = md_from_sensitive(&codes, 3);
        let p = anatomize(&md, &AnatomizeConfig::new(2)).unwrap();
        assert_anatomize_invariants(&md, &p, 2);
    }

    #[test]
    fn heavy_skew_at_boundary() {
        // One value holds exactly n/l tuples: the largest-bucket rule must
        // drain it every iteration or the run would fail.
        let mut codes = vec![0u32; 25];
        codes.extend((0..75).map(|i| 1 + (i % 30)));
        let md = md_from_sensitive(&codes, 31);
        let p = anatomize(&md, &AnatomizeConfig::new(4)).unwrap();
        assert_anatomize_invariants(&md, &p, 4);
    }

    #[test]
    fn round_robin_fails_where_largest_first_succeeds() {
        // One value holds exactly n/l tuples; the largest-first rule
        // drains it every iteration (Property 1), while round-robin visits
        // it only once per cycle and strands it.
        let mut codes = vec![0u32; 30]; // n = 120, l = 4 -> 30 allowed
        codes.extend((0..90).map(|i| 1 + (i % 29)));
        let md = md_from_sensitive(&codes, 30);
        let ok = anatomize(&md, &AnatomizeConfig::new(4)).unwrap();
        assert_anatomize_invariants(&md, &ok, 4);

        let rr = anatomize(
            &md,
            &AnatomizeConfig::new(4).with_strategy(BucketStrategy::RoundRobin),
        );
        assert!(
            matches!(
                rr,
                Err(CoreError::ResidueUnassignable { sensitive_code: 0 })
            ),
            "round-robin should strand the dominant bucket, got {rr:?}"
        );
    }

    #[test]
    fn round_robin_matches_on_uniform_data() {
        // Without skew both strategies produce valid partitions with the
        // same RCE (all groups have l distinct singleton values).
        let codes: Vec<u32> = (0..60).map(|i| i % 6).collect();
        let md = md_from_sensitive(&codes, 6);
        let p = anatomize(
            &md,
            &AnatomizeConfig::new(3).with_strategy(BucketStrategy::RoundRobin),
        )
        .unwrap();
        assert_anatomize_invariants(&md, &p, 3);
    }

    #[test]
    fn output_satisfies_all_diversity_instantiations() {
        // Groups of l distinct singleton values satisfy not only
        // Definition 2 but also the entropy and recursive instantiations
        // of ref [10] (Section 3.1's "straightforward to extend").
        use crate::diversity::DiversityCriterion;
        let codes: Vec<u32> = (0..80).map(|i| (i * 3) % 8).collect();
        let md = md_from_sensitive(&codes, 8);
        let l = 4;
        let p = anatomize(&md, &AnatomizeConfig::new(l)).unwrap();
        for j in 0..p.group_count() as u32 {
            let hist = p.sensitive_histogram(&md, j);
            assert!(DiversityCriterion::Frequency { l }.check(&hist));
            assert!(DiversityCriterion::Entropy { l }.check(&hist));
            assert!(DiversityCriterion::Recursive { c: 1.5, l }.check(&hist));
        }
    }

    #[test]
    fn stress_many_seeds() {
        for seed in 0..20 {
            let codes: Vec<u32> = (0..97)
                .map(|i| (i * 13 + seed as usize) as u32 % 10)
                .collect();
            let md = md_from_sensitive(&codes, 10);
            let p = anatomize(&md, &AnatomizeConfig::new(5).with_seed(seed)).unwrap();
            assert_anatomize_invariants(&md, &p, 5);
        }
    }

    /// The tentpole contract: ladder and sort-based group creation agree
    /// bit for bit — same groups, same tuple order, same residue handling.
    #[test]
    fn ladder_matches_reference_on_structured_inputs() {
        let cases: Vec<(Vec<u32>, u32)> = vec![
            // Uniform: one giant size class peeled front-to-back.
            ((0..240).map(|i| i % 24).collect(), 24),
            // Strict skew ladder: all-distinct sizes.
            (
                (0..17)
                    .flat_map(|v| std::iter::repeat_n(v, 18 - v as usize))
                    .collect(),
                17,
            ),
            // Dominant value at the eligibility boundary.
            (
                {
                    let mut c = vec![0u32; 40];
                    c.extend((0..120).map(|i| 1 + (i % 37)));
                    c
                },
                38,
            ),
            // Pairs of equal sizes everywhere: merge-heavy.
            (
                (0..30)
                    .flat_map(|v| std::iter::repeat_n(v, 3 + (v as usize / 2) % 5))
                    .collect(),
                30,
            ),
        ];
        for (codes, domain) in cases {
            let md = md_from_sensitive(&codes, domain);
            for l in [2usize, 3, 4, 7] {
                for seed in [0u64, 1, 0xDEAD] {
                    let cfg = AnatomizeConfig::new(l).with_seed(seed);
                    let fast = anatomize(&md, &cfg);
                    let slow = anatomize_reference(&md, &cfg);
                    match (fast, slow) {
                        (Ok(a), Ok(b)) => assert_eq!(a, b, "l={l} seed={seed}"),
                        (Err(a), Err(b)) => {
                            assert_eq!(a.to_string(), b.to_string(), "l={l} seed={seed}")
                        }
                        (a, b) => panic!("diverged: l={l} seed={seed}: {a:?} vs {b:?}"),
                    }
                }
            }
        }
    }

    /// A larger merge-heavy differential case: λ = 300 with mixed
    /// multiplicities, exercising boundary-class splits, both merge
    /// directions and residue assignment at scale.
    #[test]
    fn ladder_matches_reference_large() {
        let codes: Vec<u32> = (0..20_000u64)
            .map(|i| ((i * 2654435761) % 300) as u32)
            .collect();
        let md = md_from_sensitive(&codes, 300);
        for l in [2usize, 10, 50] {
            let cfg = AnatomizeConfig::new(l).with_seed(99);
            let fast = anatomize(&md, &cfg).unwrap();
            let slow = anatomize_reference(&md, &cfg).unwrap();
            assert_eq!(fast, slow, "l={l}");
            assert_anatomize_invariants(&md, &fast, l);
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]
            /// For any eligible input, Anatomize yields an l-diverse
            /// partition satisfying Property 3.
            #[test]
            fn anatomize_always_l_diverse(
                codes in proptest::collection::vec(0u32..8, 4..200),
                l in 2usize..5,
                seed in 0u64..1000,
            ) {
                let md = md_from_sensitive(&codes, 8);
                let hist = Histogram::of_column(md.sensitive_codes(), 8);
                let eligible = hist
                    .max()
                    .map(|(_, c)| c * l <= codes.len())
                    .unwrap_or(true);
                let result = anatomize(&md, &AnatomizeConfig::new(l).with_seed(seed));
                if eligible {
                    let p = result.unwrap();
                    assert_anatomize_invariants(&md, &p, l);
                } else {
                    let rejected = matches!(result, Err(CoreError::NotEligible { .. }));
                    prop_assert!(rejected);
                }
            }

            /// Differential property: the frequency ladder reproduces the
            /// sort-based oracle bit for bit — identical partitions (and
            /// identical errors) across random microdata, seeds, both
            /// strategy arms, and sensitive domains up to λ = 64.
            #[test]
            fn ladder_equals_sort_oracle(
                codes in proptest::collection::vec(0u32..64, 0..300),
                lambda in 2u32..=64,
                l in 2usize..8,
                seed in 0u64..10_000,
                round_robin in 0u8..2,
            ) {
                let codes: Vec<u32> = codes.iter().map(|&c| c % lambda).collect();
                let md = md_from_sensitive(&codes, lambda);
                let strategy = if round_robin == 1 {
                    BucketStrategy::RoundRobin
                } else {
                    BucketStrategy::LargestFirst
                };
                let cfg = AnatomizeConfig::new(l)
                    .with_seed(seed)
                    .with_strategy(strategy);
                let fast = anatomize(&md, &cfg);
                let slow = anatomize_reference(&md, &cfg);
                match (fast, slow) {
                    (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
                    (Err(a), Err(b)) => prop_assert_eq!(a.to_string(), b.to_string()),
                    (a, b) => {
                        return Err(TestCaseError::fail(
                            format!("paths diverged: {a:?} vs {b:?}"),
                        ));
                    }
                }
            }
        }
    }
}
