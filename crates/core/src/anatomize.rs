//! The `Anatomize` algorithm (Figure 3 of the paper), in-memory variant.
//!
//! `Anatomize` computes an l-diverse partition in two phases:
//!
//! 1. **Group creation** (Lines 3–8): hash tuples into buckets by sensitive
//!    value; while at least `l` buckets are non-empty, draw one random
//!    tuple from each of the `l` *currently largest* buckets to form a new
//!    QI-group. Property 1: under the eligibility condition, every bucket
//!    ends with at most one tuple.
//! 2. **Residue assignment** (Lines 9–12): each of the ≤ l−1 leftover
//!    tuples joins a random existing group that does not yet contain its
//!    sensitive value. Property 2: such a group always exists.
//!
//! The result (Property 3) is a partition where every group has at least
//! `l` tuples, *all with distinct sensitive values* — hence l-diverse — and
//! by Theorem 4 its re-construction error is within a factor `1 + 1/n` of
//! the lower bound of Theorem 2.
//!
//! This module is the fast in-memory implementation used by the accuracy
//! experiments (Figures 4–7); [`crate::anatomize_io`] is the external,
//! I/O-accounted variant matching Theorem 3's cost model.

use crate::diversity::check_eligibility;
use crate::error::CoreError;
use crate::partition::Partition;
use anatomy_tables::Microdata;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

/// How group creation picks its `l` buckets each iteration.
///
/// The paper's Line 5 takes the `l` **largest** buckets; that choice is
/// what makes Property 1 (at most `l − 1` residue tuples) true. The
/// round-robin alternative exists for the ablation in `repro strategy`:
/// on skewed data it leaves a dominant bucket undrained and fails where
/// `Anatomize` succeeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BucketStrategy {
    /// The paper's rule: the `l` currently largest buckets.
    #[default]
    LargestFirst,
    /// Ablation arm: the next `l` non-empty buckets in cyclic value order.
    RoundRobin,
}

/// Configuration for [`anatomize`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnatomizeConfig {
    /// Diversity parameter `l >= 2`.
    pub l: usize,
    /// Seed for the random choices (which tuple leaves a bucket, which
    /// group receives a residue). Fixing it makes runs reproducible.
    pub seed: u64,
    /// Bucket selection rule (see [`BucketStrategy`]).
    pub strategy: BucketStrategy,
}

impl AnatomizeConfig {
    /// Configuration with the given `l`, a fixed default seed, and the
    /// paper's largest-first strategy.
    pub fn new(l: usize) -> Self {
        AnatomizeConfig {
            l,
            seed: 0xA7A7,
            strategy: BucketStrategy::LargestFirst,
        }
    }

    /// Replace the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replace the bucket strategy (ablation only; the default reproduces
    /// the paper).
    pub fn with_strategy(mut self, strategy: BucketStrategy) -> Self {
        self.strategy = strategy;
        self
    }
}

/// Compute an l-diverse partition of `md` with the `Anatomize` algorithm.
///
/// Fails with [`CoreError::NotEligible`] when no l-diverse partition exists
/// (some sensitive value occurs more than `n/l` times) and with
/// [`CoreError::InvalidL`] for `l < 2`.
///
/// ```
/// use anatomy_core::{anatomize, AnatomizeConfig};
/// use anatomy_tables::{Attribute, Microdata, Schema, TableBuilder};
///
/// let schema = Schema::new(vec![
///     Attribute::numerical("Age", 100),
///     Attribute::categorical("Disease", 4),
/// ])?;
/// let mut b = TableBuilder::new(schema);
/// for i in 0..12u32 {
///     b.push_row(&[20 + i, i % 4])?;
/// }
/// let md = Microdata::with_leading_qi(b.finish(), 1)?;
///
/// let partition = anatomize(&md, &AnatomizeConfig::new(3))?;
/// assert_eq!(partition.group_count(), 4); // floor(n / l)
/// assert!(partition.is_l_diverse(&md, 3));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn anatomize(md: &Microdata, config: &AnatomizeConfig) -> Result<Partition, CoreError> {
    let l = config.l;
    check_eligibility(md, l)?;
    let n = md.len();
    if n == 0 {
        return Partition::new(vec![], 0);
    }

    let mut rng = StdRng::seed_from_u64(config.seed);

    // Line 2: hash by sensitive value, one bucket per value. Shuffling each
    // bucket once up front makes `pop()` equivalent to "remove an arbitrary
    // (random) tuple" (Line 7).
    let domain = md.sensitive_domain_size() as usize;
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); domain];
    for (r, &code) in md.sensitive_codes().iter().enumerate() {
        buckets[code as usize].push(r as u32);
    }
    for b in &mut buckets {
        b.shuffle(&mut rng);
    }

    // Lines 3-8: group creation.
    let mut groups: Vec<Vec<u32>> = Vec::with_capacity(n / l);
    // Sensitive values present in each group, kept sorted for binary
    // search during residue assignment.
    let mut group_values: Vec<Vec<u32>> = Vec::with_capacity(n / l);
    let mut nonempty: Vec<u32> = (0..domain as u32)
        .filter(|&v| !buckets[v as usize].is_empty())
        .collect();

    let mut cursor = 0usize; // round-robin position (ablation strategy)
    while nonempty.len() >= l {
        match config.strategy {
            BucketStrategy::LargestFirst => {
                // Line 5: S = the l largest buckets *currently*. Sorting the
                // non-empty list by size (descending) each iteration is
                // O(λ log λ) with λ <= |sensitive domain|, negligible next
                // to the scan.
                nonempty.sort_unstable_by(|&a, &b| {
                    buckets[b as usize]
                        .len()
                        .cmp(&buckets[a as usize].len())
                        .then(a.cmp(&b))
                });
            }
            BucketStrategy::RoundRobin => {
                // Rotate so each iteration starts after the previous one's
                // first pick.
                nonempty.sort_unstable();
                cursor %= nonempty.len();
                nonempty.rotate_left(cursor);
                cursor += 1;
            }
        }
        let mut group = Vec::with_capacity(l);
        let mut values = Vec::with_capacity(l);
        for &v in nonempty.iter().take(l) {
            let tuple = buckets[v as usize].pop().expect("bucket in non-empty list");
            group.push(tuple);
            values.push(v);
        }
        values.sort_unstable();
        groups.push(group);
        group_values.push(values);
        nonempty.retain(|&v| !buckets[v as usize].is_empty());
    }

    // Lines 9-12: residue assignment. At most l-1 tuples remain (Property
    // 1 guarantees one per bucket under eligibility; the loop below does
    // not rely on that and drains whatever is left).
    for v in nonempty {
        while let Some(tuple) = buckets[v as usize].pop() {
            // S' = groups that do not contain sensitive value v.
            let candidates: Vec<usize> = group_values
                .iter()
                .enumerate()
                .filter(|(_, vals)| vals.binary_search(&v).is_err())
                .map(|(j, _)| j)
                .collect();
            if candidates.is_empty() {
                return Err(CoreError::ResidueUnassignable { sensitive_code: v });
            }
            let j = candidates[rng.random_range(0..candidates.len())];
            groups[j].push(tuple);
            let pos = group_values[j].binary_search(&v).unwrap_err();
            group_values[j].insert(pos, v);
        }
    }

    Partition::new(groups, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use anatomy_tables::stats::Histogram;
    use anatomy_tables::{Attribute, Schema, TableBuilder};

    fn md_from_sensitive(codes: &[u32], domain: u32) -> Microdata {
        let schema = Schema::new(vec![
            Attribute::numerical("Age", 1000),
            Attribute::categorical("S", domain),
        ])
        .unwrap();
        let mut b = TableBuilder::new(schema);
        for (i, &c) in codes.iter().enumerate() {
            b.push_row(&[i as u32, c]).unwrap();
        }
        Microdata::with_leading_qi(b.finish(), 1).unwrap()
    }

    fn assert_anatomize_invariants(md: &Microdata, p: &Partition, l: usize) {
        // Property 3: every group has >= l tuples, all with distinct
        // sensitive values; group sizes never exceed 2l-1.
        for j in 0..p.group_count() as u32 {
            let rows = p.group(j);
            assert!(rows.len() >= l, "group {j} has {} < l tuples", rows.len());
            assert!(
                rows.len() < 2 * l,
                "group {j} has {} > 2l-1 tuples",
                rows.len()
            );
            let mut values: Vec<u32> = rows
                .iter()
                .map(|&r| md.sensitive_value(r as usize).code())
                .collect();
            values.sort_unstable();
            values.dedup();
            assert_eq!(
                values.len(),
                rows.len(),
                "group {j} has duplicate sensitive values"
            );
        }
        assert!(p.is_l_diverse(md, l));
        // Number of groups is floor(n/l) (proof of Property 1).
        assert_eq!(p.group_count(), md.len() / l);
    }

    #[test]
    fn paper_example_l2() {
        // Table 1's diseases: pneu, dysp, dysp, pneu, flu, gast, flu, bron.
        let md = md_from_sensitive(&[0, 1, 1, 0, 2, 3, 2, 4], 5);
        let p = anatomize(&md, &AnatomizeConfig::new(2)).unwrap();
        assert_anatomize_invariants(&md, &p, 2);
    }

    #[test]
    fn multiple_of_l_gives_exact_groups() {
        let codes: Vec<u32> = (0..60).map(|i| i % 6).collect();
        let md = md_from_sensitive(&codes, 6);
        let p = anatomize(&md, &AnatomizeConfig::new(3)).unwrap();
        assert_anatomize_invariants(&md, &p, 3);
        // n divisible by l: every group has exactly l tuples.
        assert!(p.group_sizes().iter().all(|&s| s == 3));
    }

    #[test]
    fn residues_are_absorbed() {
        // n = 11, l = 3 -> 3 groups, 2 residues -> some group of size 4.
        let codes = [0, 0, 0, 1, 1, 1, 2, 2, 2, 3, 4];
        let md = md_from_sensitive(&codes, 6);
        let p = anatomize(&md, &AnatomizeConfig::new(3)).unwrap();
        assert_anatomize_invariants(&md, &p, 3);
        let total: usize = p.group_sizes().iter().sum();
        assert_eq!(total, 11);
    }

    #[test]
    fn deterministic_in_seed() {
        let codes: Vec<u32> = (0..100).map(|i| (i * 7) % 9).collect();
        let md = md_from_sensitive(&codes, 9);
        let a = anatomize(&md, &AnatomizeConfig::new(4).with_seed(1)).unwrap();
        let b = anatomize(&md, &AnatomizeConfig::new(4).with_seed(1)).unwrap();
        let c = anatomize(&md, &AnatomizeConfig::new(4).with_seed(2)).unwrap();
        assert_eq!(a, b);
        // With 100 tuples a different seed virtually surely differs.
        assert_ne!(a, c);
    }

    #[test]
    fn ineligible_input_rejected() {
        let md = md_from_sensitive(&[0, 0, 0, 1], 3);
        assert!(matches!(
            anatomize(&md, &AnatomizeConfig::new(2)),
            Err(CoreError::NotEligible { .. })
        ));
    }

    #[test]
    fn empty_microdata_gives_empty_partition() {
        let md = md_from_sensitive(&[], 3);
        let p = anatomize(&md, &AnatomizeConfig::new(2)).unwrap();
        assert!(p.is_empty());
    }

    #[test]
    fn eligibility_boundary_succeeds() {
        // max_count * l == n exactly.
        let codes = [0, 0, 0, 1, 1, 2]; // max 3, n 6, l 2
        let md = md_from_sensitive(&codes, 3);
        let p = anatomize(&md, &AnatomizeConfig::new(2)).unwrap();
        assert_anatomize_invariants(&md, &p, 2);
    }

    #[test]
    fn heavy_skew_at_boundary() {
        // One value holds exactly n/l tuples: the largest-bucket rule must
        // drain it every iteration or the run would fail.
        let mut codes = vec![0u32; 25];
        codes.extend((0..75).map(|i| 1 + (i % 30)));
        let md = md_from_sensitive(&codes, 31);
        let p = anatomize(&md, &AnatomizeConfig::new(4)).unwrap();
        assert_anatomize_invariants(&md, &p, 4);
    }

    #[test]
    fn round_robin_fails_where_largest_first_succeeds() {
        // One value holds exactly n/l tuples; the largest-first rule
        // drains it every iteration (Property 1), while round-robin visits
        // it only once per cycle and strands it.
        let mut codes = vec![0u32; 30]; // n = 120, l = 4 -> 30 allowed
        codes.extend((0..90).map(|i| 1 + (i % 29)));
        let md = md_from_sensitive(&codes, 30);
        let ok = anatomize(&md, &AnatomizeConfig::new(4)).unwrap();
        assert_anatomize_invariants(&md, &ok, 4);

        let rr = anatomize(
            &md,
            &AnatomizeConfig::new(4).with_strategy(BucketStrategy::RoundRobin),
        );
        assert!(
            matches!(
                rr,
                Err(CoreError::ResidueUnassignable { sensitive_code: 0 })
            ),
            "round-robin should strand the dominant bucket, got {rr:?}"
        );
    }

    #[test]
    fn round_robin_matches_on_uniform_data() {
        // Without skew both strategies produce valid partitions with the
        // same RCE (all groups have l distinct singleton values).
        let codes: Vec<u32> = (0..60).map(|i| i % 6).collect();
        let md = md_from_sensitive(&codes, 6);
        let p = anatomize(
            &md,
            &AnatomizeConfig::new(3).with_strategy(BucketStrategy::RoundRobin),
        )
        .unwrap();
        assert_anatomize_invariants(&md, &p, 3);
    }

    #[test]
    fn output_satisfies_all_diversity_instantiations() {
        // Groups of l distinct singleton values satisfy not only
        // Definition 2 but also the entropy and recursive instantiations
        // of ref [10] (Section 3.1's "straightforward to extend").
        use crate::diversity::DiversityCriterion;
        let codes: Vec<u32> = (0..80).map(|i| (i * 3) % 8).collect();
        let md = md_from_sensitive(&codes, 8);
        let l = 4;
        let p = anatomize(&md, &AnatomizeConfig::new(l)).unwrap();
        for j in 0..p.group_count() as u32 {
            let hist = p.sensitive_histogram(&md, j);
            assert!(DiversityCriterion::Frequency { l }.check(&hist));
            assert!(DiversityCriterion::Entropy { l }.check(&hist));
            assert!(DiversityCriterion::Recursive { c: 1.5, l }.check(&hist));
        }
    }

    #[test]
    fn stress_many_seeds() {
        for seed in 0..20 {
            let codes: Vec<u32> = (0..97)
                .map(|i| (i * 13 + seed as usize) as u32 % 10)
                .collect();
            let md = md_from_sensitive(&codes, 10);
            let p = anatomize(&md, &AnatomizeConfig::new(5).with_seed(seed)).unwrap();
            assert_anatomize_invariants(&md, &p, 5);
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]
            /// For any eligible input, Anatomize yields an l-diverse
            /// partition satisfying Property 3.
            #[test]
            fn anatomize_always_l_diverse(
                codes in proptest::collection::vec(0u32..8, 4..200),
                l in 2usize..5,
                seed in 0u64..1000,
            ) {
                let md = md_from_sensitive(&codes, 8);
                let hist = Histogram::of_column(md.sensitive_codes(), 8);
                let eligible = hist
                    .max()
                    .map(|(_, c)| c * l <= codes.len())
                    .unwrap_or(true);
                let result = anatomize(&md, &AnatomizeConfig::new(l).with_seed(seed));
                if eligible {
                    let p = result.unwrap();
                    assert_anatomize_invariants(&md, &p, l);
                } else {
                    let rejected = matches!(result, Err(CoreError::NotEligible { .. }));
                    prop_assert!(rejected);
                }
            }
        }
    }
}
