//! Serializing and auditing a published release.
//!
//! A data publisher hands researchers two flat files — the QIT and the ST.
//! This module writes them as CSV (group ids 1-based, as in the paper's
//! Table 3) and reads them back with full validation, so a *consumer* of a
//! release can independently verify the publisher's l-diversity claim
//! before relying on the privacy guarantee (Definition 2 is checkable from
//! the ST alone; consistency between the files is checkable from their
//! group ids).

use crate::error::CoreError;
use crate::partition::GroupId;
use crate::published::{AnatomizedTables, StRecord};
use anatomy_tables::{Schema, TableBuilder, TablesError, Value};
use std::fmt::Write as _;

/// Serialize the QIT as CSV: QI attribute names + `Group-ID` header, value
/// codes per row, 1-based group ids.
pub fn qit_to_csv(tables: &AnatomizedTables) -> String {
    let mut out = String::new();
    let names = tables.qi_table().schema().names().join(",");
    let _ = writeln!(out, "{names},Group-ID");
    for r in 0..tables.len() {
        for i in 0..tables.qi_count() {
            let _ = write!(out, "{},", tables.qi_codes(i)[r]);
        }
        let _ = writeln!(out, "{}", tables.group_ids()[r] + 1);
    }
    out
}

/// Serialize the ST as CSV: `Group-ID,As,Count`, 1-based group ids.
pub fn st_to_csv(tables: &AnatomizedTables) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Group-ID,As,Count");
    for rec in tables.st_records() {
        let _ = writeln!(out, "{},{},{}", rec.group + 1, rec.value.code(), rec.count);
    }
    out
}

fn csv_err(line: usize, message: impl Into<String>) -> CoreError {
    CoreError::Tables(TablesError::Csv {
        line,
        message: message.into(),
    })
}

/// Parse and validate a release.
///
/// `qi_schema` describes the QI attributes (names and domains) the release
/// claims; `l` is the diversity level the release claims. Every invariant
/// of [`AnatomizedTables::from_parts`] is enforced, so a successful parse
/// *is* the audit: the returned tables provably bound every adversary at
/// `1/l` (Corollary 1 / Theorem 1).
pub fn parse_release(
    qi_schema: Schema,
    qit_csv: &str,
    st_csv: &str,
    l: usize,
) -> Result<AnatomizedTables, CoreError> {
    let (qit, group_ids, st) = parse_release_parts(qi_schema, qit_csv, st_csv)?;
    AnatomizedTables::from_parts(qit, group_ids, st, l)
}

/// Parse a release's files *without* semantic validation.
///
/// Only the CSV syntax and schema agreement are checked; the returned raw
/// parts may violate every invariant of [`AnatomizedTables::from_parts`].
/// This is the entry point for auditors (`anatomy-audit`,
/// `anatomy verify`) that want to inspect a possibly-corrupt release and
/// report *which* invariant broke, rather than having the strict
/// constructor reject it wholesale.
#[allow(clippy::type_complexity)]
pub fn parse_release_parts(
    qi_schema: Schema,
    qit_csv: &str,
    st_csv: &str,
) -> Result<(anatomy_tables::Table, Vec<GroupId>, Vec<StRecord>), CoreError> {
    let d = qi_schema.width();

    // ---- QIT ----
    let mut lines = qit_csv.lines();
    let header = lines
        .next()
        .ok_or_else(|| csv_err(1, "missing QIT header"))?;
    let expected: Vec<&str> = qi_schema.names().into_iter().chain(["Group-ID"]).collect();
    let got: Vec<&str> = header.split(',').collect();
    if got != expected {
        return Err(csv_err(1, format!("QIT header {got:?} != {expected:?}")));
    }
    let mut builder = TableBuilder::new(qi_schema);
    let mut group_ids: Vec<GroupId> = Vec::new();
    let mut codes = vec![0u32; d];
    for (idx, line) in lines.enumerate() {
        let line_no = idx + 2;
        if line.trim().is_empty() {
            continue;
        }
        let mut fields = line.split(',');
        for slot in codes.iter_mut() {
            let f = fields
                .next()
                .ok_or_else(|| csv_err(line_no, "too few QIT fields"))?;
            *slot = f
                .trim()
                .parse()
                .map_err(|_| csv_err(line_no, format!("bad code `{f}`")))?;
        }
        let g: u32 = fields
            .next()
            .ok_or_else(|| csv_err(line_no, "missing Group-ID"))?
            .trim()
            .parse()
            .map_err(|_| csv_err(line_no, "bad Group-ID"))?;
        if fields.next().is_some() {
            return Err(csv_err(line_no, "too many QIT fields"));
        }
        if g == 0 {
            return Err(csv_err(line_no, "Group-ID must be 1-based"));
        }
        builder
            .push_row(&codes)
            .map_err(|e| csv_err(line_no, e.to_string()))?;
        group_ids.push(g - 1);
    }
    let qit = builder.finish();

    // ---- ST ----
    let mut st: Vec<StRecord> = Vec::new();
    let mut lines = st_csv.lines();
    let header = lines
        .next()
        .ok_or_else(|| csv_err(1, "missing ST header"))?;
    if header.split(',').collect::<Vec<_>>() != ["Group-ID", "As", "Count"] {
        return Err(csv_err(
            1,
            format!("ST header `{header}` != Group-ID,As,Count"),
        ));
    }
    for (idx, line) in lines.enumerate() {
        let line_no = idx + 2;
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 3 {
            return Err(csv_err(line_no, "ST records have exactly 3 fields"));
        }
        let g: u32 = fields[0]
            .trim()
            .parse()
            .map_err(|_| csv_err(line_no, "bad Group-ID"))?;
        if g == 0 {
            return Err(csv_err(line_no, "Group-ID must be 1-based"));
        }
        let v: u32 = fields[1]
            .trim()
            .parse()
            .map_err(|_| csv_err(line_no, "bad sensitive code"))?;
        let c: u32 = fields[2]
            .trim()
            .parse()
            .map_err(|_| csv_err(line_no, "bad count"))?;
        st.push(StRecord {
            group: g - 1,
            value: Value(v),
            count: c,
        });
    }

    Ok((qit, group_ids, st))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anatomize::{anatomize, AnatomizeConfig};
    use anatomy_tables::{Attribute, Microdata, Schema, TableBuilder};

    fn publication() -> (Schema, AnatomizedTables) {
        let schema = Schema::new(vec![
            Attribute::numerical("Age", 100),
            Attribute::categorical("S", 6),
        ])
        .unwrap();
        let mut b = TableBuilder::new(schema);
        for i in 0..30u32 {
            b.push_row(&[i * 3 % 100, i % 6]).unwrap();
        }
        let md = Microdata::with_leading_qi(b.finish(), 1).unwrap();
        let p = anatomize(&md, &AnatomizeConfig::new(3)).unwrap();
        let tables = AnatomizedTables::publish(&md, &p, 3).unwrap();
        let qi_schema = md.table().schema().project(&[0]).unwrap();
        (qi_schema, tables)
    }

    #[test]
    fn round_trip_preserves_the_release() {
        let (schema, tables) = publication();
        let qit_csv = qit_to_csv(&tables);
        let st_csv = st_to_csv(&tables);
        let back = parse_release(schema, &qit_csv, &st_csv, 3).unwrap();
        assert_eq!(back, tables);
    }

    #[test]
    fn csv_uses_one_based_group_ids() {
        let (_, tables) = publication();
        let qit_csv = qit_to_csv(&tables);
        // No QIT row carries group id 0 in the file.
        for line in qit_csv.lines().skip(1) {
            let gid: u32 = line.rsplit(',').next().unwrap().parse().unwrap();
            assert!(gid >= 1);
        }
        let st_csv = st_to_csv(&tables);
        assert!(st_csv.starts_with("Group-ID,As,Count"));
    }

    #[test]
    fn audit_rejects_a_non_diverse_release() {
        let (schema, tables) = publication();
        let qit_csv = qit_to_csv(&tables);
        let st_csv = st_to_csv(&tables);
        // The release is 3-diverse but not 6-diverse (groups have 3
        // distinct values).
        assert!(parse_release(schema, &qit_csv, &st_csv, 6).is_err());
    }

    #[test]
    fn audit_rejects_tampered_counts() {
        let (schema, tables) = publication();
        let qit_csv = qit_to_csv(&tables);
        let st_csv = st_to_csv(&tables);
        // Inflate one count: the per-group mass check must fire.
        let tampered = st_csv.replacen(",1\n", ",2\n", 1);
        assert!(parse_release(schema, &qit_csv, &tampered, 3).is_err());
    }

    #[test]
    fn audit_rejects_inconsistent_group_ids() {
        let (schema, tables) = publication();
        let mut qit_csv = qit_to_csv(&tables);
        let st_csv = st_to_csv(&tables);
        // Point one tuple at a non-existent group.
        qit_csv = qit_csv.replacen(",1\n", ",999\n", 1);
        assert!(parse_release(schema, &qit_csv, &st_csv, 3).is_err());
    }

    #[test]
    fn raw_parse_accepts_what_the_strict_parse_rejects() {
        let (schema, tables) = publication();
        let qit_csv = qit_to_csv(&tables);
        let st_csv = st_to_csv(&tables).replacen(",1\n", ",2\n", 1);
        // Strict parse refuses the tampered release outright...
        assert!(parse_release(schema.clone(), &qit_csv, &st_csv, 3).is_err());
        // ...while the raw parts come back for an auditor to diagnose.
        let (qit, group_ids, st) = parse_release_parts(schema, &qit_csv, &st_csv).unwrap();
        assert_eq!(qit.len(), tables.len());
        assert_eq!(group_ids, tables.group_ids());
        assert_eq!(st.len(), tables.st_records().len());
        assert_eq!(st[0].count, 2);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let (schema, tables) = publication();
        let qit_csv = qit_to_csv(&tables);
        let st_csv = "Group-ID,As,Count\n1,x,1\n";
        let err = parse_release(schema, &qit_csv, st_csv, 3).unwrap_err();
        assert!(err.to_string().contains("line 2"), "got: {err}");
    }

    #[test]
    fn header_mismatches_rejected() {
        let (schema, tables) = publication();
        let st_csv = st_to_csv(&tables);
        assert!(parse_release(schema.clone(), "Wrong,Header\n", &st_csv, 3).is_err());
        let qit_csv = qit_to_csv(&tables);
        assert!(parse_release(schema, &qit_csv, "Bad,Header,Here\n", 3).is_err());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]
            /// Any publication round-trips through the CSV release format,
            /// and the parse re-validates successfully at the original l.
            #[test]
            fn release_round_trip(
                codes in proptest::collection::vec(0u32..6, 6..80),
                seed in 0u64..30,
            ) {
                let schema = Schema::new(vec![
                    Attribute::numerical("Age", 100),
                    Attribute::categorical("S", 6),
                ]).unwrap();
                let mut b = TableBuilder::new(schema);
                for (i, &c) in codes.iter().enumerate() {
                    b.push_row(&[i as u32, c]).unwrap();
                }
                let md = Microdata::with_leading_qi(b.finish(), 1).unwrap();
                let config = AnatomizeConfig::new(2).with_seed(seed);
                if let Ok(p) = anatomize(&md, &config) {
                    let tables = AnatomizedTables::publish(&md, &p, 2).unwrap();
                    let qi_schema = md.table().schema().project(&[0]).unwrap();
                    let back = parse_release(
                        qi_schema,
                        &qit_to_csv(&tables),
                        &st_to_csv(&tables),
                        2,
                    ).unwrap();
                    prop_assert_eq!(back, tables);
                }
            }
        }
    }
}
