//! Partitions of the microdata into QI-groups (Definition 1).

use crate::diversity::group_is_l_diverse;
use crate::error::CoreError;
use anatomy_tables::stats::Histogram;
use anatomy_tables::Microdata;

/// Identifier of a QI-group. Group ids are dense, `0..group_count`; the
/// *published* Group-ID column is conventionally 1-based (as in the paper's
/// Table 3) and the display layer adds 1.
pub type GroupId = u32;

/// A partition of the microdata rows into QI-groups.
///
/// Maintains both directions of the mapping: `groups[j]` lists the row
/// indices of group `j`, and `group_of[r]` gives the group of row `r`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    groups: Vec<Vec<u32>>,
    group_of: Vec<GroupId>,
}

impl Partition {
    /// Build a partition from per-group row lists, validating Definition 1:
    /// every row in `0..n` appears in exactly one group.
    pub fn new(groups: Vec<Vec<u32>>, n: usize) -> Result<Self, CoreError> {
        let mut group_of = vec![u32::MAX; n];
        let mut assigned = 0usize;
        for (j, rows) in groups.iter().enumerate() {
            for &r in rows {
                let r_us = r as usize;
                if r_us >= n {
                    return Err(CoreError::InvalidPartition(format!(
                        "row {r} out of range for n = {n}"
                    )));
                }
                if group_of[r_us] != u32::MAX {
                    return Err(CoreError::InvalidPartition(format!(
                        "row {r} appears in groups {} and {j}",
                        group_of[r_us]
                    )));
                }
                group_of[r_us] = j as GroupId;
                assigned += 1;
            }
        }
        if assigned != n {
            return Err(CoreError::InvalidPartition(format!(
                "{assigned} of {n} rows assigned to groups"
            )));
        }
        Ok(Partition { groups, group_of })
    }

    /// Number of QI-groups (`m`).
    #[inline]
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Number of partitioned rows (`n`).
    #[inline]
    pub fn len(&self) -> usize {
        self.group_of.len()
    }

    /// Whether the partition covers no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.group_of.is_empty()
    }

    /// Row indices of group `j`.
    #[inline]
    pub fn group(&self, j: GroupId) -> &[u32] {
        &self.groups[j as usize]
    }

    /// All groups, in id order.
    #[inline]
    pub fn groups(&self) -> &[Vec<u32>] {
        &self.groups
    }

    /// Group of row `r`.
    #[inline]
    pub fn group_of(&self, r: usize) -> GroupId {
        self.group_of[r]
    }

    /// The dense row→group mapping.
    #[inline]
    pub fn group_ids(&self) -> &[GroupId] {
        &self.group_of
    }

    /// Sizes of all groups, in id order.
    pub fn group_sizes(&self) -> Vec<usize> {
        self.groups.iter().map(|g| g.len()).collect()
    }

    /// The sensitive histogram of group `j` under `md`.
    pub fn sensitive_histogram(&self, md: &Microdata, j: GroupId) -> Histogram {
        let rows: Vec<usize> = self.group(j).iter().map(|&r| r as usize).collect();
        Histogram::of_rows(md.sensitive_codes(), &rows, md.sensitive_domain_size())
    }

    /// Check Definition 2 over every group: the partition is l-diverse iff
    /// each group's most frequent sensitive value covers at most `1/l` of
    /// the group.
    pub fn is_l_diverse(&self, md: &Microdata, l: usize) -> bool {
        (0..self.group_count() as GroupId)
            .all(|j| group_is_l_diverse(&self.sensitive_histogram(md, j), l))
    }

    /// Validate l-diversity, returning a descriptive error naming the first
    /// offending group.
    pub fn check_l_diverse(&self, md: &Microdata, l: usize) -> Result<(), CoreError> {
        for j in 0..self.group_count() as GroupId {
            let hist = self.sensitive_histogram(md, j);
            if !group_is_l_diverse(&hist, l) {
                let (v, c) = hist.max().expect("non-diverse group is non-empty");
                return Err(CoreError::InvalidPartition(format!(
                    "group {j} is not {l}-diverse: value {v} occurs {c} times in {} tuples",
                    hist.total()
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anatomy_tables::{Attribute, Schema, TableBuilder};

    fn md8() -> Microdata {
        // The paper's Table 1 shape: 8 tuples, diseases coded 0..4.
        let schema = Schema::new(vec![
            Attribute::numerical("Age", 100),
            Attribute::categorical("Disease", 5),
        ])
        .unwrap();
        let mut b = TableBuilder::new(schema);
        // diseases: pneu=0 dysp=1 flu=2 gast=3 bron=4
        for (age, d) in [
            (23, 0),
            (27, 1),
            (35, 1),
            (59, 0),
            (61, 2),
            (65, 3),
            (65, 2),
            (70, 4),
        ] {
            b.push_row(&[age, d]).unwrap();
        }
        Microdata::with_leading_qi(b.finish(), 1).unwrap()
    }

    fn paper_partition() -> Partition {
        Partition::new(vec![vec![0, 1, 2, 3], vec![4, 5, 6, 7]], 8).unwrap()
    }

    #[test]
    fn construction_builds_both_mappings() {
        let p = paper_partition();
        assert_eq!(p.group_count(), 2);
        assert_eq!(p.len(), 8);
        assert_eq!(p.group(0), &[0, 1, 2, 3]);
        assert_eq!(p.group_of(5), 1);
        assert_eq!(p.group_sizes(), vec![4, 4]);
    }

    #[test]
    fn rejects_missing_row() {
        let err = Partition::new(vec![vec![0, 1]], 3).unwrap_err();
        assert!(matches!(err, CoreError::InvalidPartition(_)));
    }

    #[test]
    fn rejects_duplicate_row() {
        let err = Partition::new(vec![vec![0, 1], vec![1, 2]], 3).unwrap_err();
        assert!(matches!(err, CoreError::InvalidPartition(_)));
    }

    #[test]
    fn rejects_out_of_range_row() {
        let err = Partition::new(vec![vec![0, 5]], 2).unwrap_err();
        assert!(matches!(err, CoreError::InvalidPartition(_)));
    }

    #[test]
    fn paper_partition_is_2_diverse_not_3() {
        let md = md8();
        let p = paper_partition();
        assert!(p.is_l_diverse(&md, 2));
        assert!(!p.is_l_diverse(&md, 3));
        assert!(p.check_l_diverse(&md, 2).is_ok());
        assert!(p.check_l_diverse(&md, 3).is_err());
    }

    #[test]
    fn sensitive_histogram_matches_group() {
        let md = md8();
        let p = paper_partition();
        let h = p.sensitive_histogram(&md, 0);
        assert_eq!(h.count(anatomy_tables::Value(0)), 2); // pneumonia x2
        assert_eq!(h.count(anatomy_tables::Value(1)), 2); // dyspepsia x2
        assert_eq!(h.total(), 4);
        let h2 = p.sensitive_histogram(&md, 1);
        assert_eq!(h2.count(anatomy_tables::Value(2)), 2); // flu x2
        assert_eq!(h2.distinct(), 3);
    }

    #[test]
    fn empty_partition_is_valid() {
        let p = Partition::new(vec![], 0).unwrap();
        assert!(p.is_empty());
        assert_eq!(p.group_count(), 0);
    }
}
