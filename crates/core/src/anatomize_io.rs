//! External `Anatomize` with logical I/O accounting (Theorem 3).
//!
//! This is the implementation described in the proof of Theorem 3:
//!
//! 1. **Hash** the microdata file into one bucket file per sensitive value
//!    (`O(n/b)` I/Os, `O(λ)` memory — one output buffer per bucket; the
//!    [`anatomy_storage::hash_partition`] primitive transparently falls
//!    back to multi-pass partitioning if `λ + 1` exceeds the buffer
//!    budget).
//! 2. **Group creation** keeps the bucket sizes in memory (an `O(λ)`
//!    array), holds one input buffer page per bucket and one output page,
//!    and streams complete QI-groups to a *QI-group file* in creation
//!    order, so each group's records are contiguous.
//! 3. **Residue assignment + publication** reads the ≤ l−1 residue tuples
//!    into memory and performs a single scan of the QI-group file,
//!    assigning each residue to the first compatible group encountered
//!    (one exists by Property 2) while streaming out the QIT and ST files.
//!
//! Total cost: one write + one read of the bucket files, one write + one
//! read of the QI-group file, plus reading the input and writing QIT/ST —
//! all `O(n/b)`. The returned [`ExternalAnatomizeOutput`] carries the I/O
//! statistics plotted in Figures 8 and 9.
//!
//! Records:
//! * input/bucket files — `d + 1` u32s: QI codes then sensitive code;
//! * QI-group file — `d + 2` u32s: QI codes, sensitive code, group id;
//! * QIT — `d + 1` u32s: QI codes, group id (Definition 3);
//! * ST — 3 u32s: group id, sensitive value, count.

use crate::diversity::check_eligibility;
use crate::error::CoreError;
use anatomy_storage::{
    hash_partition, BufferPool, IoCounter, IoStats, PageConfig, SeqReader, SeqWriter, SimFile,
    U32RowCodec,
};
use anatomy_tables::Microdata;

/// Output of [`anatomize_external`].
#[derive(Debug, Clone)]
pub struct ExternalAnatomizeOutput {
    /// The QIT file: records `(qi_1, …, qi_d, group_id)`.
    pub qit: SimFile,
    /// The ST file: records `(group_id, sensitive_value, count)`.
    pub st: SimFile,
    /// Number of QI-groups created (`⌊n/l⌋`).
    pub groups: usize,
    /// Logical I/O incurred by the anatomization itself (excludes writing
    /// the input file, which models pre-existing data).
    pub stats: IoStats,
}

impl ExternalAnatomizeOutput {
    /// Decode the QIT/ST files into validated [`AnatomizedTables`], so the
    /// external pipeline's output plugs straight into the adversary and
    /// query machinery. `qi_schema` describes the QI attributes (the
    /// microdata schema projected to its QI columns); `l` is the diversity
    /// the run was performed with.
    pub fn into_tables(
        &self,
        qi_schema: anatomy_tables::Schema,
        l: usize,
    ) -> Result<crate::published::AnatomizedTables, CoreError> {
        tables_from_files(&self.qit, &self.st, qi_schema, l)
    }
}

/// Decode on-disk QIT (`(qi_1, …, qi_d, group_id)` records) and ST
/// (`(group_id, value, count)` records) files into validated
/// [`AnatomizedTables`](crate::published::AnatomizedTables). Shared by the
/// external and sharded engines.
pub fn tables_from_files(
    qit: &SimFile,
    st_file: &SimFile,
    qi_schema: anatomy_tables::Schema,
    l: usize,
) -> Result<crate::published::AnatomizedTables, CoreError> {
    let d = qi_schema.width();
    let pool = BufferPool::unbounded();
    let scratch = IoCounter::new();

    let mut builder = anatomy_tables::TableBuilder::new(qi_schema);
    let mut group_ids = Vec::with_capacity(qit.record_count());
    let reader = SeqReader::open(qit, U32RowCodec::new(d + 1), &pool, scratch.clone())?;
    for rec in reader {
        let rec = rec?;
        builder.push_row(&rec[..d])?;
        group_ids.push(rec[d]);
    }

    let mut st = Vec::with_capacity(st_file.record_count());
    let reader = SeqReader::open(st_file, U32RowCodec::new(3), &pool, scratch)?;
    for rec in reader {
        let rec = rec?;
        st.push(crate::published::StRecord {
            group: rec[0],
            value: anatomy_tables::Value(rec[1]),
            count: rec[2],
        });
    }
    crate::published::AnatomizedTables::from_parts(builder.finish(), group_ids, st, l)
}

/// Serialize `md` into a [`SimFile`] of `(d+1)`-field records without
/// charging the experiment's I/O counter (the microdata is assumed to
/// already reside on disk; reading it *is* charged, by the algorithm).
pub fn microdata_to_file(md: &Microdata, cfg: PageConfig) -> Result<SimFile, CoreError> {
    let d = md.qi_count();
    let codec = U32RowCodec::new(d + 1);
    let scratch_counter = IoCounter::new();
    let scratch_pool = BufferPool::unbounded();
    let mut file = SimFile::new();
    let mut w = SeqWriter::open(&mut file, codec, cfg, &scratch_pool, scratch_counter)?;
    let mut row = vec![0u32; d + 1];
    for r in 0..md.len() {
        for (i, slot) in row.iter_mut().enumerate().take(d) {
            *slot = md.qi_value(r, i).code();
        }
        row[d] = md.sensitive_value(r).code();
        w.push(&row)?;
    }
    w.finish()?;
    Ok(file)
}

/// Run the external `Anatomize` on `md` with diversity `l`.
///
/// `pool` bounds the algorithm's memory; `Theorem 3` needs `O(λ)` pages, so
/// pass at least `λ + 2` (use [`recommended_pool`]). `counter` accumulates
/// the logical I/O cost.
pub fn anatomize_external(
    md: &Microdata,
    l: usize,
    cfg: PageConfig,
    pool: &BufferPool,
    counter: &IoCounter,
) -> Result<ExternalAnatomizeOutput, CoreError> {
    // Same observability contract as the in-memory `anatomize`: phase
    // spans to the process registry, no effect on the output. Pass an
    // [`IoCounter::observed`] counter to additionally mirror the page
    // counts into the same registry.
    let obs = anatomy_obs::global();
    let _run = obs.span("anatomize_external");

    check_eligibility(md, l)?;
    let before = counter.stats();
    let d = md.qi_count();
    let lambda = md.sensitive_domain_size() as usize;
    let tuple_codec = U32RowCodec::new(d + 1);
    let group_codec = U32RowCodec::new(d + 2);
    let qit_codec = U32RowCodec::new(d + 1);
    let st_codec = U32RowCodec::new(3);

    let input = microdata_to_file(md, cfg)?;
    // Reading the input is charged inside hash_partition.

    // ---- Phase 1: hash by sensitive value (Line 2 of Figure 3). ----
    let buckets = {
        let _phase = obs.span("hash_partition");
        hash_partition(
            &input,
            tuple_codec,
            |rec| rec[d],
            lambda,
            cfg,
            pool,
            counter,
        )?
    };

    // In-memory O(λ) state: remaining records per bucket.
    let mut remaining: Vec<usize> = buckets.iter().map(|b| b.record_count()).collect();

    // ---- Phase 2: group creation (Lines 3-8). ----
    // One open reader (= one buffer page) per non-empty bucket, plus one
    // output page for the QI-group file.
    let mut group_file = SimFile::new();
    let mut groups = 0usize;
    {
        let mut readers: Vec<Option<SeqReader<'_, U32RowCodec>>> = Vec::with_capacity(lambda);
        for b in &buckets {
            readers.push(if b.is_empty() {
                None
            } else {
                Some(SeqReader::open(b, tuple_codec, pool, counter.clone())?)
            });
        }
        let mut group_writer =
            SeqWriter::open(&mut group_file, group_codec, cfg, pool, counter.clone())?;

        let group_phase = obs.span("group_creation");
        let mut nonempty: Vec<u32> = (0..lambda as u32)
            .filter(|&v| remaining[v as usize] > 0)
            .collect();
        while nonempty.len() >= l {
            nonempty.sort_unstable_by(|&a, &b| {
                remaining[b as usize]
                    .cmp(&remaining[a as usize])
                    .then(a.cmp(&b))
            });
            let gid = groups as u32;
            for &v in nonempty.iter().take(l) {
                // Both lookups are invariants of the loop above, but a
                // damaged bucket file must degrade to a typed error, not
                // a panic, so the whole chain stays recoverable.
                let Some(reader) = readers[v as usize].as_mut() else {
                    return Err(CoreError::InvalidPartition(format!(
                        "bucket {v} has no open reader during group creation"
                    )));
                };
                let Some(rec) = reader.next() else {
                    return Err(CoreError::InvalidPartition(format!(
                        "bucket {v} exhausted early during group creation"
                    )));
                };
                let mut rec = rec.map_err(CoreError::Storage)?;
                rec.push(gid);
                group_writer.push(&rec)?;
                remaining[v as usize] -= 1;
            }
            groups += 1;
            nonempty.retain(|&v| remaining[v as usize] > 0);
        }
        drop(group_phase);

        let publication_phase = obs.span("publication_scan");
        // ---- Residues: at most l-1 tuples, read into memory (O(l)). ----
        let mut residues: Vec<Vec<u32>> = Vec::new();
        for v in nonempty {
            let Some(reader) = readers[v as usize].as_mut() else {
                return Err(CoreError::InvalidPartition(format!(
                    "bucket {v} has no open reader during residue collection"
                )));
            };
            for rec in reader.by_ref() {
                residues.push(rec.map_err(CoreError::Storage)?);
            }
        }
        // Finish explicitly: a failed flush of the last partial page must
        // propagate, not vanish in a drop.
        group_writer.finish()?;
        drop(readers);

        // ---- Phase 3: one scan of the QI-group file; assign residues,
        // emit QIT and ST (Lines 9-18). ----
        let mut qit = SimFile::new();
        let mut st = SimFile::new();
        {
            let reader = SeqReader::open(&group_file, group_codec, pool, counter.clone())?;
            let mut qit_writer = SeqWriter::open(&mut qit, qit_codec, cfg, pool, counter.clone())?;
            let mut st_writer = SeqWriter::open(&mut st, st_codec, cfg, pool, counter.clone())?;
            let mut assigned = vec![false; residues.len()];

            let mut current_group: Option<u32> = None;
            // Sensitive values of the group being scanned (size <= l, an
            // O(l) working set).
            let mut group_values: Vec<u32> = Vec::with_capacity(l + 2);

            let flush_group = |gid: u32,
                               group_values: &mut Vec<u32>,
                               assigned: &mut [bool],
                               qit_writer: &mut SeqWriter<'_, U32RowCodec>,
                               st_writer: &mut SeqWriter<'_, U32RowCodec>|
             -> Result<(), anatomy_storage::StorageError> {
                // Offer every unassigned residue to this group.
                for (i, res) in residues.iter().enumerate() {
                    if assigned[i] {
                        continue;
                    }
                    let v = res[d];
                    if !group_values.contains(&v) {
                        assigned[i] = true;
                        group_values.push(v);
                        let mut qrow: Vec<u32> = res[..d].to_vec();
                        qrow.push(gid);
                        qit_writer.push(&qrow)?;
                    }
                }
                // All values in a group are distinct (Property 3), so every
                // ST count is 1. Emit in value order for determinism.
                group_values.sort_unstable();
                for &v in group_values.iter() {
                    st_writer.push(&vec![gid, v, 1])?;
                }
                group_values.clear();
                Ok(())
            };

            for rec in reader {
                let rec = rec.map_err(CoreError::Storage)?;
                let gid = rec[d + 1];
                if current_group != Some(gid) {
                    if let Some(prev) = current_group {
                        flush_group(
                            prev,
                            &mut group_values,
                            &mut assigned,
                            &mut qit_writer,
                            &mut st_writer,
                        )?;
                    }
                    current_group = Some(gid);
                }
                group_values.push(rec[d]);
                let mut qrow: Vec<u32> = rec[..d].to_vec();
                qrow.push(gid);
                qit_writer.push(&qrow)?;
            }
            if let Some(prev) = current_group {
                flush_group(
                    prev,
                    &mut group_values,
                    &mut assigned,
                    &mut qit_writer,
                    &mut st_writer,
                )?;
            }

            if let Some(i) = assigned.iter().position(|&a| !a) {
                return Err(CoreError::ResidueUnassignable {
                    sensitive_code: residues[i][d],
                });
            }
            qit_writer.finish()?;
            st_writer.finish()?;
        }
        drop(publication_phase);

        obs.counter("core.external_runs").incr();
        obs.counter("core.rows_anatomized_external")
            .add(md.len() as u64);

        let stats = counter.stats().since(&before);
        Ok(ExternalAnatomizeOutput {
            qit,
            st,
            groups,
            stats,
        })
    }
}

/// A buffer pool sized for `anatomize_external` on microdata with `lambda`
/// distinct sensitive values: `λ` bucket pages + 1 output page + slack for
/// the final scan, and never less than the paper's 50 pages.
pub fn recommended_pool(lambda: usize) -> BufferPool {
    BufferPool::new((lambda + 3).max(anatomy_storage::PAPER_MEMORY_PAGES))
}

#[cfg(test)]
mod tests {
    use super::*;
    use anatomy_tables::{Attribute, Schema, TableBuilder};

    fn md_from(codes: &[(u32, u32)], qi_dom: u32, s_dom: u32) -> Microdata {
        let schema = Schema::new(vec![
            Attribute::numerical("A", qi_dom),
            Attribute::categorical("S", s_dom),
        ])
        .unwrap();
        let mut b = TableBuilder::new(schema);
        for &(a, s) in codes {
            b.push_row(&[a, s]).unwrap();
        }
        Microdata::with_leading_qi(b.finish(), 1).unwrap()
    }

    fn read_rows(f: &SimFile, arity: usize) -> Vec<Vec<u32>> {
        let pool = BufferPool::unbounded();
        SeqReader::open(f, U32RowCodec::new(arity), &pool, IoCounter::new())
            .unwrap()
            .map(|r| r.unwrap())
            .collect()
    }

    /// Validate the published files: QIT covers all tuples, every group is
    /// l-diverse with distinct values, ST counts match QIT group sizes.
    fn check_output(md: &Microdata, out: &ExternalAnatomizeOutput, l: usize) {
        let d = md.qi_count();
        let qit = read_rows(&out.qit, d + 1);
        assert_eq!(qit.len(), md.len());
        let st = read_rows(&out.st, 3);

        // Group sizes from QIT.
        let mut sizes = vec![0usize; out.groups];
        for row in &qit {
            sizes[row[d] as usize] += 1;
        }
        for (g, &s) in sizes.iter().enumerate() {
            assert!(s >= l, "group {g} has {s} < l tuples");
            assert!(s < 2 * l);
        }
        // ST: every count is 1, per-group record count equals group size.
        let mut st_counts = vec![0usize; out.groups];
        for rec in &st {
            assert_eq!(rec[2], 1);
            st_counts[rec[0] as usize] += 1;
        }
        assert_eq!(st_counts, sizes);

        // Multiset of QI values is preserved.
        let mut orig: Vec<u32> = md.qi_codes(0).to_vec();
        let mut published: Vec<u32> = qit.iter().map(|r| r[0]).collect();
        orig.sort_unstable();
        published.sort_unstable();
        assert_eq!(orig, published);
    }

    #[test]
    fn external_output_is_l_diverse() {
        let tuples: Vec<(u32, u32)> = (0..60).map(|i| (i, i % 6)).collect();
        let md = md_from(&tuples, 100, 6);
        let cfg = PageConfig::with_page_size(64);
        let pool = recommended_pool(6);
        let counter = IoCounter::new();
        let out = anatomize_external(&md, 3, cfg, &pool, &counter).unwrap();
        assert_eq!(out.groups, 20);
        check_output(&md, &out, 3);
        assert!(out.stats.total() > 0);
        assert_eq!(pool.in_use(), 0);
    }

    #[test]
    fn residues_are_assigned_during_the_scan() {
        // n = 11, l = 3: 2 residues.
        let tuples: Vec<(u32, u32)> = [
            (0, 0),
            (1, 0),
            (2, 0),
            (3, 1),
            (4, 1),
            (5, 1),
            (6, 2),
            (7, 2),
            (8, 2),
            (9, 3),
            (10, 4),
        ]
        .to_vec();
        let md = md_from(&tuples, 100, 6);
        let cfg = PageConfig::with_page_size(64);
        let pool = recommended_pool(6);
        let counter = IoCounter::new();
        let out = anatomize_external(&md, 3, cfg, &pool, &counter).unwrap();
        assert_eq!(out.groups, 3);
        check_output(&md, &out, 3);
    }

    #[test]
    fn io_cost_is_linear_in_n() {
        // Doubling n should roughly double the I/O (O(n/b), Theorem 3).
        let cfg = PageConfig::with_page_size(256);
        let cost = |n: usize| {
            let tuples: Vec<(u32, u32)> =
                (0..n).map(|i| (i as u32 % 1000, i as u32 % 10)).collect();
            let md = md_from(&tuples, 1000, 10);
            let pool = recommended_pool(10);
            let counter = IoCounter::new();
            let out = anatomize_external(&md, 5, cfg, &pool, &counter).unwrap();
            out.stats.total()
        };
        let c1 = cost(2000);
        let c2 = cost(4000);
        let ratio = c2 as f64 / c1 as f64;
        assert!(
            (1.8..=2.2).contains(&ratio),
            "cost ratio {ratio} not ~2 ({c1} -> {c2})"
        );
    }

    #[test]
    fn io_cost_is_a_small_multiple_of_data_size() {
        let n = 5000usize;
        let tuples: Vec<(u32, u32)> = (0..n).map(|i| (i as u32, i as u32 % 8)).collect();
        let md = md_from(&tuples, 5000, 8);
        let cfg = PageConfig::paper();
        let pool = recommended_pool(8);
        let counter = IoCounter::new();
        let out = anatomize_external(&md, 4, cfg, &pool, &counter).unwrap();
        let input_pages = cfg.pages_for(n, 8).unwrap() as u64; // d+1 = 2 fields
                                                               // read input + write/read buckets + write/read group file + write
                                                               // QIT/ST: roughly 6-7 passes over ~input-sized files.
        assert!(out.stats.total() >= 5 * input_pages);
        assert!(
            out.stats.total() <= 10 * input_pages,
            "cost {} too high",
            out.stats.total()
        );
    }

    #[test]
    fn agrees_with_in_memory_group_count_and_rejects_ineligible() {
        let tuples: Vec<(u32, u32)> = (0..50).map(|i| (i, i % 5)).collect();
        let md = md_from(&tuples, 100, 5);
        let cfg = PageConfig::with_page_size(128);
        let pool = recommended_pool(5);
        let out = anatomize_external(&md, 5, cfg, &pool, &IoCounter::new()).unwrap();
        assert_eq!(out.groups, 10);

        let skewed: Vec<(u32, u32)> = (0..10).map(|i| (i, if i < 8 { 0 } else { 1 })).collect();
        let md = md_from(&skewed, 100, 5);
        assert!(matches!(
            anatomize_external(&md, 2, cfg, &pool, &IoCounter::new()),
            Err(CoreError::NotEligible { .. })
        ));
    }

    #[test]
    fn external_output_decodes_into_validated_tables() {
        let tuples: Vec<(u32, u32)> = (0..48).map(|i| (i, i % 6)).collect();
        let md = md_from(&tuples, 100, 6);
        let cfg = PageConfig::with_page_size(64);
        let pool = recommended_pool(6);
        let out = anatomize_external(&md, 3, cfg, &pool, &IoCounter::new()).unwrap();
        let qi_schema = md.table().schema().project(&[0]).unwrap();
        let tables = out.into_tables(qi_schema, 3).unwrap();
        assert_eq!(tables.len(), 48);
        assert_eq!(tables.group_count(), out.groups);
        // from_parts validated Definition 2; spot-check the published QI
        // multiset.
        let mut orig: Vec<u32> = md.qi_codes(0).to_vec();
        let mut published: Vec<u32> = tables.qi_codes(0).to_vec();
        orig.sort_unstable();
        published.sort_unstable();
        assert_eq!(orig, published);
        // A false diversity claim is rejected at decode time.
        let qi_schema = md.table().schema().project(&[0]).unwrap();
        assert!(out.into_tables(qi_schema, 4).is_err());
    }

    #[test]
    fn empty_microdata() {
        let md = md_from(&[], 10, 5);
        let cfg = PageConfig::with_page_size(64);
        let pool = recommended_pool(5);
        let out = anatomize_external(&md, 2, cfg, &pool, &IoCounter::new()).unwrap();
        assert_eq!(out.groups, 0);
        assert!(out.qit.is_empty());
        assert!(out.st.is_empty());
    }
}
