//! # anatomy-core
//!
//! The Anatomy technique of Xiao & Tao (VLDB 2006).
//!
//! Anatomy publishes a microdata relation as two tables — a
//! quasi-identifier table (QIT) holding every tuple's *exact* QI values plus
//! a group id, and a sensitive table (ST) holding each group's histogram of
//! sensitive values (Definition 3). Privacy rests on the underlying
//! partition being *l-diverse* (Definition 2): an adversary who knows a
//! target's QI values and presence in the data can pin down the sensitive
//! value with probability at most `1/l`, both per tuple (Corollary 1) and
//! per individual (Theorem 1).
//!
//! Module tour, in paper order:
//!
//! * [`diversity`] — Definition 2, the eligibility condition, and the
//!   alternative instantiations of l-diversity discussed via the paper's
//!   ref [10] (entropy and recursive (c,l)-diversity);
//! * [`partition`] — partitions into QI-groups (Definition 1) with
//!   validation;
//! * [`anatomize`] — the linear-time `Anatomize` algorithm (Figure 3,
//!   Properties 1–3);
//! * [`anatomize_io`] — the external, I/O-accounted variant whose cost is
//!   the `O(n/b)` of Theorem 3 and the "anatomy" series of Figures 8–9;
//! * [`anatomize_shard`] — the sharded out-of-core pipeline behind
//!   `Engine::Sharded`, targeting 10M–100M tuples with concurrent
//!   per-shard bucket splits and O(λ) resident merge state;
//! * [`published`] — the QIT/ST pair (Definition 3);
//! * [`adversary`] — the QIT⋈ST reconstruction (Lemma 1) and breach
//!   probabilities (Corollary 1, Theorem 1);
//! * [`pdf`] — reconstructed per-tuple pdfs and their L2 error (Section 4,
//!   Equations 9–12);
//! * [`rce`] — the re-construction error, its lower bound `n(1 − 1/l)`
//!   (Theorem 2) and the `1 + 1/n` optimality guarantee of `Anatomize`
//!   (Theorem 4);
//! * [`multi_sensitive`] — the multi-sensitive-attribute extension flagged
//!   as future work in the paper's Section 7;
//! * [`kanonymity`] — k-anonymity checks and the homogeneity-attack
//!   measurement behind the paper's Section 2 comparison;
//! * [`release`] — CSV serialization of a QIT/ST release plus the
//!   consumer-side audit that re-validates Definition 2;
//! * [`incremental`] — append-only online anatomization (beyond the paper;
//!   see the module docs for the exact guarantee).

pub mod adversary;
pub mod anatomize;
pub mod anatomize_io;
pub mod anatomize_shard;
pub mod diversity;
pub mod error;
pub mod incremental;
pub mod kanonymity;
pub mod multi_sensitive;
pub mod partition;
pub mod pdf;
pub mod published;
pub mod rce;
pub mod release;

pub use anatomize::{anatomize, anatomize_reference, AnatomizeConfig, BucketStrategy};
pub use anatomize_io::{anatomize_external, tables_from_files, ExternalAnatomizeOutput};
pub use anatomize_shard::{
    anatomize_sharded, model_pages, ShardConfig, ShardedAnatomizeOutput, DOUBLE_BUFFER_SLACK,
};
pub use diversity::{
    check_eligibility, group_is_l_diverse, max_feasible_l, suppress_to_eligibility,
    DiversityCriterion,
};
pub use error::CoreError;
pub use partition::{GroupId, Partition};
pub use published::{AnatomizedTables, StRecord};
pub use rce::{rce_lower_bound, rce_of_anatomized, rce_of_partition};
pub use release::{parse_release, parse_release_parts, qit_to_csv, st_to_csv};

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, CoreError>;
