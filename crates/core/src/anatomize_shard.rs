//! Sharded out-of-core `Anatomize` for microdata far larger than memory.
//!
//! [`anatomize_external`](crate::anatomize_external) reproduces Theorem 3
//! at paper scale (46k rows, 50 pages); this module is the production-scale
//! engine behind it, targeting 10M–100M tuples. It exploits the structure
//! Theorem 3 proves: per-sensitive-value buckets are **independent until
//! group formation**, and group formation itself depends only on the
//! bucket *sizes*. The pipeline:
//!
//! 1. **`shard_partition`** — hash the input file into `S` shard files by
//!    contiguous sensitive-value range with
//!    [`hash_partition`](anatomy_storage::hash_partition).
//! 2. **`bucket_split`** (concurrent on [`Pool::global`]) — each shard
//!    splits into its per-value bucket files against its own
//!    [`BufferPool`] and [`IoCounter`], so shards never contend for pages
//!    and every shard's I/O bill is reported separately.
//! 3. **`group_schedule`** — stream the frequency ladder
//!    ([`ladder_schedule`]) over the λ bucket **counts** with O(λ)
//!    resident state, writing each value's group-id sequence to a
//!    per-value schedule file through λ simultaneously open writers (the
//!    O(λ) pages of Theorem 3's group phase).
//! 4. **`bucket_assign`** — per value, replay the in-memory engine's
//!    Fisher–Yates shuffle (draw consumption depends only on the bucket
//!    size, so the RNG stream is reproduced exactly), then scan the bucket
//!    file with sequential prefetch, pairing each tuple with its group id
//!    and emitting `(row_id, qi…, gid)` runs through double-buffered
//!    writes.
//! 5. **`residue_assign`** — replay the ≤ l−1 residue draws against the
//!    schedule files.
//! 6. **`qit_merge` / `st_merge`** — a λ-way merge restores the original
//!    row order for the QIT and (group, value) order for the ST, again
//!    with double-buffered output.
//!
//! Because steps 3–5 replay the exact RNG draw sequence of the in-memory
//! [`anatomize`](crate::anatomize), the published QIT/ST are **bit-for-bit
//! identical** to `AnatomizedTables::publish(md, anatomize(md, cfg), l)` —
//! the differential oracle `tests/sharded_differential.rs` and the
//! `bench_anatomize_external` identity gate pin this at every overlapping
//! scale.
//!
//! Total logical I/O stays `O(n/b)`: each phase makes a constant number of
//! sequential passes over input-sized or smaller files ([`model_pages`]
//! gives the closed-form bill the benchmark gates against). Resident state
//! is O(λ) buffer pages plus one transient O(max bucket) permutation array
//! during `bucket_assign` — the unavoidable cost of replaying the shuffle.

use crate::anatomize::{ladder_schedule, round_robin_schedule, AnatomizeConfig, BucketStrategy};
use crate::anatomize_io::tables_from_files;
use crate::diversity::check_eligibility;
use crate::error::CoreError;
use anatomy_pool::{ItemCost, Pool};
use anatomy_storage::{
    hash_partition, BufferPool, IoCounter, IoStats, PageConfig, SeqReader, SeqWriter, SimFile,
    U32RowCodec,
};
use anatomy_tables::Microdata;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Extra pages the budget reserves so the QIT/ST emitters can
/// double-buffer: fill one page while the device drains the other.
pub const DOUBLE_BUFFER_SLACK: usize = 2;

/// Configuration of the sharded engine: page geometry plus the shard
/// fan-out and the per-shard page budget.
///
/// The run's total page budget is **derived** from this configuration —
/// `shards · pages_per_shard + DOUBLE_BUFFER_SLACK` — instead of the fixed
/// 50-page pool the external path uses. [`anatomize_sharded`] fails with
/// [`CoreError::ShardBudgetTooSmall`] when the sensitive domain demands
/// more resident state (one page per value at the schedule and merge
/// phases) than that budget supplies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardConfig {
    page: PageConfig,
    shards: usize,
    pages_per_shard: usize,
}

impl ShardConfig {
    /// A validated configuration. Errors with
    /// [`CoreError::InvalidShardConfig`] when `shards` is zero or
    /// `pages_per_shard` is below 3 (the minimum
    /// [`hash_partition`](anatomy_storage::hash_partition) can work with:
    /// one input page plus two output pages).
    pub fn new(page: PageConfig, shards: usize, pages_per_shard: usize) -> Result<Self, CoreError> {
        if shards == 0 {
            return Err(CoreError::InvalidShardConfig(
                "shard count must be at least 1".to_string(),
            ));
        }
        if pages_per_shard < 3 {
            return Err(CoreError::InvalidShardConfig(format!(
                "pages_per_shard must be at least 3 (one input page plus two output pages \
                 for partitioning), got {pages_per_shard}"
            )));
        }
        Ok(ShardConfig {
            page,
            shards,
            pages_per_shard,
        })
    }

    /// 4096-byte pages, 8 shards, 16 pages per shard — a sensible default
    /// for the CENSUS-shaped workloads (λ = 50) of the benchmarks.
    pub fn paper() -> Self {
        ShardConfig {
            page: PageConfig::paper(),
            shards: 8,
            pages_per_shard: 16,
        }
    }

    /// The page geometry.
    pub fn page(&self) -> PageConfig {
        self.page
    }

    /// Number of shards the sensitive domain is split into (clamped to λ
    /// at run time — a shard needs at least one sensitive value).
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Buffer pages each shard's splitter may hold resident.
    pub fn pages_per_shard(&self) -> usize {
        self.pages_per_shard
    }

    /// The derived total page budget:
    /// `shards · pages_per_shard + DOUBLE_BUFFER_SLACK`.
    pub fn budget(&self) -> usize {
        self.shards
            .saturating_mul(self.pages_per_shard)
            .saturating_add(DOUBLE_BUFFER_SLACK)
    }

    /// Pages the widest phase of a run over a sensitive domain of
    /// `lambda` values keeps resident: one schedule page per value during
    /// the merges, one output writer, and the double-buffer slack.
    pub fn required_budget(lambda: usize) -> usize {
        (lambda + DOUBLE_BUFFER_SLACK).max(4)
    }
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig::paper()
    }
}

/// Output of [`anatomize_sharded`].
#[derive(Debug, Clone)]
pub struct ShardedAnatomizeOutput {
    /// The QIT file: records `(qi_1, …, qi_d, group_id)`, in the
    /// microdata's original row order (exactly the in-memory engine's
    /// published row order).
    pub qit: SimFile,
    /// The ST file: records `(group_id, sensitive_value, 1)`, sorted by
    /// (group, value).
    pub st: SimFile,
    /// Number of QI-groups created (`⌊n/l⌋`).
    pub groups: usize,
    /// Total logical I/O of the run (all phases, all shards).
    pub stats: IoStats,
    /// Per-shard I/O of the concurrent `bucket_split` phase, in shard
    /// order.
    pub shard_stats: Vec<IoStats>,
}

impl ShardedAnatomizeOutput {
    /// Decode the QIT/ST files into validated
    /// [`AnatomizedTables`](crate::published::AnatomizedTables).
    pub fn into_tables(
        &self,
        qi_schema: anatomy_tables::Schema,
        l: usize,
    ) -> Result<crate::published::AnatomizedTables, CoreError> {
        tables_from_files(&self.qit, &self.st, qi_schema, l)
    }
}

/// The closed-form page bill of [`anatomize_sharded`] — the `O(n/b)` model
/// the benchmark's I/O gate compares measurements against.
///
/// Counts every sequential pass the pipeline makes (input → shards →
/// buckets → schedule → assigned runs → QIT/ST), with one partial-page
/// slack term per file opened. Assumes single-pass partitioning, i.e.
/// `pages_per_shard` of at least the widest shard's value count plus one;
/// narrower budgets degrade gracefully to multi-pass splits whose extra
/// passes the model does not include.
pub fn model_pages(n: usize, d: usize, lambda: usize, l: usize, shard: &ShardConfig) -> u64 {
    let page = shard.page();
    let pages = |records: usize, arity: usize| -> u64 {
        page.pages_for(records, arity * 4).unwrap_or(0) as u64
    };
    let s = shard.shards().min(lambda).max(1) as u64;
    let lam = lambda as u64;
    let input = pages(n, d + 2);
    let sched = pages(n, 1);
    let qit = pages(n, d + 1);
    let st = pages(n, 3);
    // shard_partition: read the input once, write S shard files.
    let shard_partition = input + (input + s);
    // bucket_split: read the shards, write λ bucket files.
    let bucket_split = (input + s) + (input + lam);
    // group_schedule: write λ per-value schedule files.
    let group_schedule = sched + lam;
    // bucket_assign: read each value's schedule and bucket, write the
    // assigned runs (same arity as the input).
    let bucket_assign = (sched + lam) + (input + lam) + (input + lam);
    // residue_assign: re-read the schedule files of the ≤ l−1 residual
    // values.
    let residue = (l as u64).saturating_sub(1) * (sched / lam.max(1) + 1);
    // qit_merge: read the assigned runs, write the QIT.
    let qit_merge = (input + lam) + (qit + 1);
    // st_merge: read the schedule files again, write the ST.
    let st_merge = (sched + lam) + (st + 1);
    shard_partition + bucket_split + group_schedule + bucket_assign + residue + qit_merge + st_merge
}

/// Serialize `md` into `(qi_1, …, qi_d, s, row_id)` records without
/// charging `counter` (the microdata models pre-existing data; *reading*
/// it is charged, by the first partition pass). The trailing row id is the
/// record identifier that lets the final merge restore the original row
/// order.
fn microdata_to_rid_file(md: &Microdata, cfg: PageConfig) -> Result<SimFile, CoreError> {
    let d = md.qi_count();
    let codec = U32RowCodec::new(d + 2);
    let scratch_pool = BufferPool::unbounded();
    let mut file = SimFile::new();
    let mut w = SeqWriter::open(&mut file, codec, cfg, &scratch_pool, IoCounter::new())?;
    let mut row = vec![0u32; d + 2];
    for r in 0..md.len() {
        for (i, slot) in row.iter_mut().enumerate().take(d) {
            *slot = md.qi_value(r, i).code();
        }
        row[d] = md.sensitive_value(r).code();
        row[d + 1] = r as u32;
        w.push(&row)?;
    }
    w.finish()?;
    Ok(file)
}

/// The `pick`-th group id (ascending) among `0..m` that is neither in the
/// sorted `sched` list nor in `picked` — replaying the in-memory engine's
/// `candidates.remove(pick)` against the streamed schedule.
fn nth_candidate(pick: usize, m: usize, sched: &[u32], picked: &[u32]) -> Option<u32> {
    let mut sched_ptr = 0usize;
    let mut seen = 0usize;
    for gid in 0..m as u32 {
        while sched_ptr < sched.len() && sched[sched_ptr] < gid {
            sched_ptr += 1;
        }
        if sched_ptr < sched.len() && sched[sched_ptr] == gid {
            continue;
        }
        if picked.contains(&gid) {
            continue;
        }
        if seen == pick {
            return Some(gid);
        }
        seen += 1;
    }
    None
}

/// Run the sharded out-of-core `Anatomize` on `md`.
///
/// `counter` accumulates the run's total logical I/O (the per-shard split
/// counters are folded into it and also reported separately in the
/// output). The page budget is derived from `shard` — see [`ShardConfig`].
///
/// The published QIT/ST are bit-for-bit identical to the in-memory
/// engine's:
/// `AnatomizedTables::publish(md, &anatomize(md, config)?, config.l)`.
///
/// Row ids are stored as `u32`, so `md` may hold at most `u32::MAX` rows.
pub fn anatomize_sharded(
    md: &Microdata,
    config: &AnatomizeConfig,
    shard: &ShardConfig,
    counter: &IoCounter,
) -> Result<ShardedAnatomizeOutput, CoreError> {
    let obs = anatomy_obs::global();
    let _run = obs.span("anatomize_sharded");

    let l = config.l;
    check_eligibility(md, l)?;
    let n = md.len();
    let d = md.qi_count();
    let lambda = md.sensitive_domain_size() as usize;

    let budget = shard.budget();
    let required = ShardConfig::required_budget(lambda);
    if budget < required {
        return Err(CoreError::ShardBudgetTooSmall { required, budget });
    }
    if n == 0 {
        // Mirrors the in-memory engine: an empty input publishes empty
        // tables before any RNG state is created.
        return Ok(ShardedAnatomizeOutput {
            qit: SimFile::new(),
            st: SimFile::new(),
            groups: 0,
            stats: IoStats::default(),
            shard_stats: Vec::new(),
        });
    }
    if n > u32::MAX as usize {
        return Err(CoreError::InvalidShardConfig(format!(
            "row ids are u32: {n} rows exceed the 2^32 - 1 limit"
        )));
    }

    let cfg = shard.page();
    let pool = BufferPool::new(budget);
    let before = counter.stats();
    let tuple_codec = U32RowCodec::new(d + 2);
    let sched_codec = U32RowCodec::new(1);

    let input = microdata_to_rid_file(md, cfg)?;

    // ---- Phase 1: partition into shards by sensitive-value range. ----
    // Shard i covers the contiguous value range [⌈iλ/S⌉, ⌈(i+1)λ/S⌉).
    let s_count = shard.shards().min(lambda).max(1);
    let range_lo = |s: usize| -> usize { (s * lambda).div_ceil(s_count) };
    let shard_files = {
        let _phase = obs.span("shard_partition");
        hash_partition(
            &input,
            tuple_codec,
            |rec| (rec[d] as usize * s_count / lambda) as u32,
            s_count,
            cfg,
            &pool,
            counter,
        )?
    };
    drop(input);

    // ---- Phase 2: split each shard into per-value buckets, concurrently
    // on the global pool. Each shard gets its own page budget and its own
    // I/O counter; nothing is shared, so the split parallelizes freely.
    let shard_jobs: Vec<(usize, SimFile)> = shard_files.into_iter().enumerate().collect();
    let pages_per_shard = shard.pages_per_shard();
    let split_results: Vec<Result<(Vec<SimFile>, IoStats), CoreError>> = {
        let _phase = obs.span("bucket_split");
        Pool::global().par_map_hinted(&shard_jobs, ItemCost::Heavy, |(s, file)| {
            let lo = range_lo(*s) as u32;
            let width = range_lo(*s + 1) - range_lo(*s);
            let shard_pool = BufferPool::new(pages_per_shard);
            let shard_counter = IoCounter::new();
            let buckets = hash_partition(
                file,
                tuple_codec,
                |rec| rec[d] - lo,
                width,
                cfg,
                &shard_pool,
                &shard_counter,
            )?;
            Ok((buckets, shard_counter.stats()))
        })
    };
    drop(shard_jobs);

    let mut bucket_files: Vec<SimFile> = Vec::with_capacity(lambda);
    let mut shard_stats: Vec<IoStats> = Vec::with_capacity(s_count);
    for result in split_results {
        let (buckets, stats) = result?;
        bucket_files.extend(buckets);
        counter.add_reads(stats.page_reads);
        counter.add_writes(stats.page_writes);
        shard_stats.push(stats);
    }
    debug_assert_eq!(bucket_files.len(), lambda);
    let counts: Vec<usize> = bucket_files.iter().map(SimFile::record_count).collect();

    // ---- Phase 3: stream the group schedule over the bucket counts. ----
    // O(λ) resident state: the ladder itself plus one open writer (= one
    // buffer page) per sensitive value.
    let mut sched_files: Vec<SimFile> = (0..lambda).map(|_| SimFile::new()).collect();
    let outcome = {
        let _phase = obs.span("group_schedule");
        let mut writers: Vec<SeqWriter<'_, U32RowCodec>> = sched_files
            .iter_mut()
            .map(|f| SeqWriter::open(f, sched_codec, cfg, &pool, counter.clone()))
            .collect::<Result<_, _>>()?;
        let mut gid = 0u32;
        let mut rec = vec![0u32; 1];
        let mut write_err: Option<anatomy_storage::StorageError> = None;
        let emit = |drawn: &[u32]| {
            if write_err.is_some() {
                return;
            }
            rec[0] = gid;
            for &v in drawn {
                if let Err(e) = writers[v as usize].push(&rec) {
                    write_err = Some(e);
                    return;
                }
            }
            gid += 1;
        };
        let outcome = match config.strategy {
            BucketStrategy::LargestFirst => ladder_schedule(&counts, l, emit),
            BucketStrategy::RoundRobin => round_robin_schedule(&counts, l, emit),
        };
        if let Some(e) = write_err {
            return Err(e.into());
        }
        for w in writers {
            w.finish()?;
        }
        outcome
    };
    let m = outcome.groups as usize;

    // ---- Phase 4: replay the shuffles, pair tuples with group ids. ----
    // The in-memory engine seeds one StdRng and shuffles every bucket in
    // value order before drawing anything else; shuffle consumption
    // depends only on the bucket length, so shuffling the index range
    // 0..s_v reproduces the exact draw stream.
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut assigned_files: Vec<SimFile> = (0..lambda).map(|_| SimFile::new()).collect();
    // Residue tuples per value, in pop order: (row_id, qi codes). At most
    // l − 1 across all values (Property 1).
    let mut residues: Vec<Vec<(u32, Vec<u32>)>> = vec![Vec::new(); lambda];
    {
        let _phase = obs.span("bucket_assign");
        let prefetch = budget.saturating_sub(4).clamp(1, 8);
        for v in 0..lambda {
            let s_v = counts[v];
            let mut perm: Vec<u32> = (0..s_v as u32).collect();
            perm.shuffle(&mut rng);
            let draws = sched_files[v].record_count();
            // The k-th draw from this bucket pops the tuple at position
            // perm[s_v − 1 − k] and joins the k-th group of the value's
            // schedule.
            let mut gid_of_pos: Vec<u32> = vec![u32::MAX; s_v];
            {
                let reader = SeqReader::open(&sched_files[v], sched_codec, &pool, counter.clone())?;
                for (k, rec) in reader.enumerate() {
                    let rec = rec.map_err(CoreError::Storage)?;
                    gid_of_pos[perm[s_v - 1 - k] as usize] = rec[0];
                }
            }
            // Remaining pops happen during residue assignment, still in
            // perm order.
            let resid_pos: Vec<u32> = (0..s_v - draws)
                .map(|j| perm[s_v - 1 - draws - j])
                .collect();
            drop(perm);

            let mut stash: Vec<Option<(u32, Vec<u32>)>> = vec![None; resid_pos.len()];
            {
                let reader = SeqReader::open_with_prefetch(
                    &bucket_files[v],
                    tuple_codec,
                    &pool,
                    counter.clone(),
                    prefetch,
                )?;
                let mut w = SeqWriter::open_buffered(
                    &mut assigned_files[v],
                    tuple_codec,
                    cfg,
                    &pool,
                    counter.clone(),
                    2,
                )?;
                let mut out = vec![0u32; d + 2];
                for (p, rec) in reader.enumerate() {
                    let rec = rec.map_err(CoreError::Storage)?;
                    let gid = *gid_of_pos.get(p).ok_or_else(|| {
                        CoreError::InvalidPartition(format!(
                            "bucket {v} holds more records than its metadata promised"
                        ))
                    })?;
                    if gid != u32::MAX {
                        out[0] = rec[d + 1];
                        out[1..=d].copy_from_slice(&rec[..d]);
                        out[d + 1] = gid;
                        w.push(&out)?;
                    } else {
                        let j =
                            resid_pos
                                .iter()
                                .position(|&q| q as usize == p)
                                .ok_or_else(|| {
                                    CoreError::InvalidPartition(format!(
                                        "bucket {v}: position {p} is neither drawn nor residual"
                                    ))
                                })?;
                        stash[j] = Some((rec[d + 1], rec[..d].to_vec()));
                    }
                }
                w.finish()?;
            }
            residues[v] = stash
                .into_iter()
                .map(|slot| {
                    slot.ok_or_else(|| {
                        CoreError::InvalidPartition(format!(
                            "bucket {v} ended before all residual positions were seen"
                        ))
                    })
                })
                .collect::<Result<_, _>>()?;
            // The bucket file is fully consumed; release its memory now so
            // peak footprint stays at ~2 input-sized file sets.
            bucket_files[v] = SimFile::new();
        }
    }
    drop(bucket_files);

    // ---- Phase 5: replay the residue draws (Lines 9–12). ----
    // Visit order comes from the schedule; candidate lists are replayed
    // against the per-value schedule files exactly as the in-memory
    // engine maintains them (built once per value, shrunk per pick).
    let mut residue_rows: Vec<(u32, Vec<u32>, u32, u32)> = Vec::new();
    {
        let _phase = obs.span("residue_assign");
        for &v in &outcome.residual {
            let pending = std::mem::take(&mut residues[v as usize]);
            if pending.is_empty() {
                continue;
            }
            let sched: Vec<u32> = SeqReader::open(
                &sched_files[v as usize],
                sched_codec,
                &pool,
                counter.clone(),
            )?
            .map(|rec| rec.map(|r| r[0]))
            .collect::<Result<_, _>>()
            .map_err(CoreError::Storage)?;
            let mut picked: Vec<u32> = Vec::new();
            for (row, qi) in pending {
                let available = m - sched.len() - picked.len();
                if available == 0 {
                    return Err(CoreError::ResidueUnassignable { sensitive_code: v });
                }
                let pick = rng.random_range(0..available);
                let gid = nth_candidate(pick, m, &sched, &picked).ok_or_else(|| {
                    CoreError::InvalidPartition(format!(
                        "candidate {pick} of {available} for value {v} not found in the schedule"
                    ))
                })?;
                picked.push(gid);
                residue_rows.push((row, qi, gid, v));
            }
        }
    }

    // ---- Phase 6: λ-way merge back to original row order (QIT). ----
    // Each assigned run ascends in row id (the partition passes preserve
    // input order), so a heap merge over λ runs plus the in-memory
    // residues restores the microdata's row order exactly.
    let qit_codec = U32RowCodec::new(d + 1);
    let mut qit = SimFile::new();
    {
        let _phase = obs.span("qit_merge");
        let mut readers: Vec<SeqReader<'_, U32RowCodec>> = assigned_files
            .iter()
            .map(|f| SeqReader::open(f, tuple_codec, &pool, counter.clone()))
            .collect::<Result<_, _>>()?;
        let mut heads: Vec<Option<Vec<u32>>> = Vec::with_capacity(lambda);
        for r in &mut readers {
            heads.push(r.next().transpose().map_err(CoreError::Storage)?);
        }
        residue_rows.sort_unstable_by_key(|t| t.0);
        let mut res_iter = residue_rows.iter().peekable();

        let mut heap: BinaryHeap<Reverse<(u32, usize)>> = heads
            .iter()
            .enumerate()
            .filter_map(|(i, h)| h.as_ref().map(|rec| Reverse((rec[0], i))))
            .collect();
        if let Some(t) = res_iter.peek() {
            heap.push(Reverse((t.0, lambda)));
        }

        let mut w = SeqWriter::open_buffered(&mut qit, qit_codec, cfg, &pool, counter.clone(), 2)?;
        let mut out = vec![0u32; d + 1];
        while let Some(Reverse((_, i))) = heap.pop() {
            if i == lambda {
                let (_, qi, gid, _) = res_iter.next().expect("peeked residue stream");
                out[..d].copy_from_slice(qi);
                out[d] = *gid;
                w.push(&out)?;
                if let Some(t) = res_iter.peek() {
                    heap.push(Reverse((t.0, lambda)));
                }
            } else {
                let rec = heads[i].take().expect("stream head in heap");
                out[..d].copy_from_slice(&rec[1..=d]);
                out[d] = rec[d + 1];
                w.push(&out)?;
                heads[i] = readers[i].next().transpose().map_err(CoreError::Storage)?;
                if let Some(h) = &heads[i] {
                    heap.push(Reverse((h[0], i)));
                }
            }
        }
        w.finish()?;
    }
    drop(assigned_files);

    // ---- Phase 7: λ-way merge to (group, value) order (ST). ----
    // Schedule file v is an ascending gid stream of (gid, v) pairs; all
    // counts are 1 (group values are distinct, Property 3).
    let st_codec = U32RowCodec::new(3);
    let mut st = SimFile::new();
    {
        let _phase = obs.span("st_merge");
        let mut readers: Vec<SeqReader<'_, U32RowCodec>> = sched_files
            .iter()
            .map(|f| SeqReader::open(f, sched_codec, &pool, counter.clone()))
            .collect::<Result<_, _>>()?;
        let mut heads: Vec<Option<Vec<u32>>> = Vec::with_capacity(lambda);
        for r in &mut readers {
            heads.push(r.next().transpose().map_err(CoreError::Storage)?);
        }
        let mut residue_pairs: Vec<(u32, u32)> = residue_rows
            .iter()
            .map(|&(_, _, gid, v)| (gid, v))
            .collect();
        residue_pairs.sort_unstable();
        let mut res_iter = residue_pairs.iter().peekable();

        let mut heap: BinaryHeap<Reverse<(u32, u32, usize)>> = heads
            .iter()
            .enumerate()
            .filter_map(|(i, h)| h.as_ref().map(|rec| Reverse((rec[0], i as u32, i))))
            .collect();
        if let Some(&&(gid, v)) = res_iter.peek() {
            heap.push(Reverse((gid, v, lambda)));
        }

        let mut w = SeqWriter::open_buffered(&mut st, st_codec, cfg, &pool, counter.clone(), 2)?;
        let mut out = vec![0u32; 3];
        while let Some(Reverse((gid, v, i))) = heap.pop() {
            out[0] = gid;
            out[1] = v;
            out[2] = 1;
            w.push(&out)?;
            if i == lambda {
                res_iter.next();
                if let Some(&&(gid, v)) = res_iter.peek() {
                    heap.push(Reverse((gid, v, lambda)));
                }
            } else {
                heads[i] = readers[i].next().transpose().map_err(CoreError::Storage)?;
                if let Some(h) = &heads[i] {
                    heap.push(Reverse((h[0], i as u32, i)));
                }
            }
        }
        w.finish()?;
    }

    obs.counter("core.sharded_runs").incr();
    obs.counter("core.rows_anatomized_sharded").add(n as u64);
    let stats = counter.stats().since(&before);
    obs.gauge("sharded.shards").set(s_count as i64);
    obs.gauge("sharded.pages_read")
        .set(stats.page_reads.min(i64::MAX as u64) as i64);
    obs.gauge("sharded.pages_written")
        .set(stats.page_writes.min(i64::MAX as u64) as i64);

    Ok(ShardedAnatomizeOutput {
        qit,
        st,
        groups: m,
        stats,
        shard_stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anatomize::anatomize;
    use crate::published::AnatomizedTables;
    use anatomy_tables::{Attribute, Schema, TableBuilder};

    fn md_from(codes: &[(u32, u32)], qi_dom: u32, s_dom: u32) -> Microdata {
        let schema = Schema::new(vec![
            Attribute::numerical("A", qi_dom),
            Attribute::categorical("S", s_dom),
        ])
        .unwrap();
        let mut b = TableBuilder::new(schema);
        for &(a, s) in codes {
            b.push_row(&[a, s]).unwrap();
        }
        Microdata::with_leading_qi(b.finish(), 1).unwrap()
    }

    fn oracle(md: &Microdata, config: &AnatomizeConfig) -> AnatomizedTables {
        let p = anatomize(md, config).unwrap();
        AnatomizedTables::publish(md, &p, config.l).unwrap()
    }

    fn shard_cfg(page: usize, shards: usize, pages_per_shard: usize) -> ShardConfig {
        ShardConfig::new(PageConfig::with_page_size(page), shards, pages_per_shard).unwrap()
    }

    #[test]
    fn matches_in_memory_bit_for_bit() {
        // Mixed skew: one dominant value, a mid tier, singletons.
        let mut tuples: Vec<(u32, u32)> = (0..40).map(|i| (i, 0)).collect();
        tuples.extend((0..120).map(|i| (40 + i, 1 + i % 7)));
        tuples.extend((0..8).map(|i| (200 + i, 8 + i % 4)));
        let md = md_from(&tuples, 300, 12);
        for l in [2usize, 3, 4] {
            for seed in [0u64, 1, 0xBEEF] {
                let config = AnatomizeConfig::new(l).with_seed(seed);
                let counter = IoCounter::new();
                let out = anatomize_sharded(&md, &config, &shard_cfg(64, 3, 6), &counter).unwrap();
                let qi_schema = md.table().schema().project(&[0]).unwrap();
                let tables = out.into_tables(qi_schema, l).unwrap();
                assert_eq!(tables, oracle(&md, &config), "l={l} seed={seed}");
                assert!(out.stats.total() > 0);
            }
        }
    }

    #[test]
    fn round_robin_arm_matches_in_memory() {
        let tuples: Vec<(u32, u32)> = (0..90).map(|i| (i, i % 9)).collect();
        let md = md_from(&tuples, 100, 9);
        let config = AnatomizeConfig::new(3)
            .with_seed(7)
            .with_strategy(BucketStrategy::RoundRobin);
        let counter = IoCounter::new();
        let out = anatomize_sharded(&md, &config, &shard_cfg(64, 4, 4), &counter).unwrap();
        let qi_schema = md.table().schema().project(&[0]).unwrap();
        assert_eq!(out.into_tables(qi_schema, 3).unwrap(), oracle(&md, &config));
    }

    #[test]
    fn errors_match_in_memory() {
        // Round-robin strands the dominant bucket: both engines must
        // report the same ResidueUnassignable.
        let mut codes: Vec<(u32, u32)> = (0..30).map(|i| (i, 0)).collect();
        codes.extend((0..90).map(|i| (30 + i, 1 + i % 29)));
        let md = md_from(&codes, 300, 30);
        let config = AnatomizeConfig::new(4).with_strategy(BucketStrategy::RoundRobin);
        let in_mem = anatomize(&md, &config).unwrap_err();
        let sharded =
            anatomize_sharded(&md, &config, &shard_cfg(64, 4, 8), &IoCounter::new()).unwrap_err();
        assert_eq!(in_mem.to_string(), sharded.to_string());

        // Ineligible input rejected identically.
        let md = md_from(&[(0, 0), (1, 0), (2, 0), (3, 1)], 10, 3);
        assert!(matches!(
            anatomize_sharded(
                &md,
                &AnatomizeConfig::new(2),
                &shard_cfg(64, 2, 4),
                &IoCounter::new()
            ),
            Err(CoreError::NotEligible { .. })
        ));
    }

    #[test]
    fn empty_input_publishes_empty_tables() {
        let md = md_from(&[], 10, 5);
        let counter = IoCounter::new();
        let out = anatomize_sharded(
            &md,
            &AnatomizeConfig::new(2),
            &shard_cfg(64, 2, 4),
            &counter,
        )
        .unwrap();
        assert_eq!(out.groups, 0);
        assert!(out.qit.is_empty());
        assert!(out.st.is_empty());
        assert_eq!(out.stats.total(), 0);
    }

    #[test]
    fn shard_config_validation_is_typed() {
        assert!(matches!(
            ShardConfig::new(PageConfig::paper(), 0, 8),
            Err(CoreError::InvalidShardConfig(_))
        ));
        assert!(matches!(
            ShardConfig::new(PageConfig::paper(), 4, 2),
            Err(CoreError::InvalidShardConfig(_))
        ));
        let cfg = ShardConfig::new(PageConfig::paper(), 4, 8).unwrap();
        assert_eq!(cfg.budget(), 4 * 8 + DOUBLE_BUFFER_SLACK);
    }

    #[test]
    fn budget_boundary_is_enforced() {
        // λ = 12 → required = 14 pages. 3 shards × 4 pages + 2 = 14: OK.
        // One page less (budget 13 via 11/1... closest: shards=1,
        // pages_per_shard=11 → 13) must fail with the typed error.
        let tuples: Vec<(u32, u32)> = (0..48).map(|i| (i, i % 12)).collect();
        let md = md_from(&tuples, 100, 12);
        let config = AnatomizeConfig::new(2);
        let ok_cfg = shard_cfg(64, 3, 4);
        assert_eq!(ok_cfg.budget(), ShardConfig::required_budget(12));
        let out = anatomize_sharded(&md, &config, &ok_cfg, &IoCounter::new()).unwrap();
        let qi_schema = md.table().schema().project(&[0]).unwrap();
        assert_eq!(out.into_tables(qi_schema, 2).unwrap(), oracle(&md, &config));

        let tight = shard_cfg(64, 1, 11);
        assert_eq!(tight.budget(), ShardConfig::required_budget(12) - 1);
        assert!(matches!(
            anatomize_sharded(&md, &config, &tight, &IoCounter::new()),
            Err(CoreError::ShardBudgetTooSmall {
                required: 14,
                budget: 13
            })
        ));
    }

    #[test]
    fn io_stays_within_the_model() {
        let n = 6000usize;
        let tuples: Vec<(u32, u32)> = (0..n).map(|i| (i as u32 % 900, i as u32 % 10)).collect();
        let md = md_from(&tuples, 900, 10);
        let config = AnatomizeConfig::new(5);
        let shard = shard_cfg(256, 4, 8);
        let counter = IoCounter::new();
        let out = anatomize_sharded(&md, &config, &shard, &counter).unwrap();
        let model = model_pages(n, 1, 10, 5, &shard);
        let measured = out.stats.total();
        assert!(
            measured as f64 <= model as f64 * 1.5,
            "measured {measured} exceeds 1.5x model {model}"
        );
        assert!(
            measured as f64 >= model as f64 / 1.5,
            "measured {measured} implausibly below model {model}"
        );
        // Per-shard stats cover the split phase and sum below the total.
        assert_eq!(out.shard_stats.len(), 4);
        let split_total: u64 = out.shard_stats.iter().map(|s| s.total()).sum();
        assert!(split_total > 0 && split_total < measured);
    }

    #[test]
    fn io_scales_linearly_in_n() {
        let shard = shard_cfg(256, 4, 8);
        let cost = |n: usize| {
            let tuples: Vec<(u32, u32)> =
                (0..n).map(|i| (i as u32 % 1000, i as u32 % 10)).collect();
            let md = md_from(&tuples, 1000, 10);
            let counter = IoCounter::new();
            anatomize_sharded(&md, &AnatomizeConfig::new(5), &shard, &counter)
                .unwrap()
                .stats
                .total()
        };
        let c1 = cost(3000);
        let c2 = cost(6000);
        let ratio = c2 as f64 / c1 as f64;
        assert!(
            (1.7..=2.3).contains(&ratio),
            "cost ratio {ratio} not ~2 ({c1} -> {c2})"
        );
    }

    #[test]
    fn pool_pages_all_return() {
        // No leaked leases: every phase returns its pages.
        let tuples: Vec<(u32, u32)> = (0..200).map(|i| (i, i % 8)).collect();
        let md = md_from(&tuples, 200, 8);
        let counter = IoCounter::new();
        anatomize_sharded(
            &md,
            &AnatomizeConfig::new(4),
            &shard_cfg(64, 2, 6),
            &counter,
        )
        .unwrap();
        // The pool is internal; reaching here without PoolExhausted and
        // with a clean second run proves pages were returned.
        anatomize_sharded(
            &md,
            &AnatomizeConfig::new(4),
            &shard_cfg(64, 2, 6),
            &counter,
        )
        .unwrap();
    }
}
