//! Error type for the anatomy core.

use std::fmt;

/// Errors produced by the anatomy core.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// `l` must be at least 2 for any privacy to be provided (an
    /// 1-diverse partition is vacuous).
    InvalidL(usize),
    /// The microdata violates the eligibility condition of the paper's
    /// ref [10] (proof of Property 1): some sensitive value occurs more
    /// than `n/l` times, so *no* l-diverse partition exists.
    NotEligible {
        /// Occurrences of the most frequent sensitive value.
        max_count: usize,
        /// Microdata cardinality.
        n: usize,
        /// Requested diversity parameter.
        l: usize,
    },
    /// The sensitive attribute's domain has fewer than `l` distinct
    /// values, so no group can ever contain `l` distinct ones.
    DomainTooSmall {
        /// Distinct values the sensitive domain can hold.
        domain: u32,
        /// Requested diversity parameter.
        l: usize,
    },
    /// A partition failed validation (not a partition of `0..n`, or not
    /// l-diverse).
    InvalidPartition(String),
    /// Residue assignment found no compatible QI-group. Cannot happen for
    /// eligible inputs (Property 2); reported rather than panicking so the
    /// invariant is checked in release builds too.
    ResidueUnassignable {
        /// The sensitive value of the stuck residue tuple.
        sensitive_code: u32,
    },
    /// The multi-sensitive extension could not build a group with pairwise
    /// distinct values in every sensitive attribute.
    MultiSensitiveInfeasible(String),
    /// A [`ShardConfig`](crate::ShardConfig) failed validation at
    /// construction time.
    InvalidShardConfig(String),
    /// The sharded pipeline's resident state (one page per sensitive
    /// value during group scheduling and the merges, plus double-buffer
    /// slack) exceeds the page budget the [`ShardConfig`](crate::ShardConfig)
    /// provides.
    ShardBudgetTooSmall {
        /// Pages the run would need resident at its widest phase.
        required: usize,
        /// Pages the configuration supplies.
        budget: usize,
    },
    /// An error from the tables substrate.
    Tables(anatomy_tables::TablesError),
    /// An error from the storage substrate.
    Storage(anatomy_storage::StorageError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidL(l) => write!(f, "l must be >= 2, got {l}"),
            CoreError::NotEligible { max_count, n, l } => write!(
                f,
                "not eligible for {l}-diversity: a sensitive value occurs {max_count} times \
                 but at most n/l = {n}/{l} occurrences are allowed"
            ),
            CoreError::DomainTooSmall { domain, l } => write!(
                f,
                "sensitive domain holds only {domain} distinct values; \
                 {l}-diverse groups need at least {l}"
            ),
            CoreError::InvalidPartition(msg) => write!(f, "invalid partition: {msg}"),
            CoreError::ResidueUnassignable { sensitive_code } => write!(
                f,
                "no QI-group can accept the residue tuple with sensitive code {sensitive_code} \
                 (violates Property 2 — input was not eligible)"
            ),
            CoreError::MultiSensitiveInfeasible(msg) => {
                write!(f, "multi-sensitive anatomization infeasible: {msg}")
            }
            CoreError::InvalidShardConfig(msg) => {
                write!(f, "invalid shard configuration: {msg}")
            }
            CoreError::ShardBudgetTooSmall { required, budget } => write!(
                f,
                "shard budget of {budget} pages is too small: the run needs {required} resident \
                 pages (one per sensitive value at the merge phases, plus double-buffer slack); \
                 raise pages_per_shard or the shard count"
            ),
            CoreError::Tables(e) => write!(f, "tables error: {e}"),
            CoreError::Storage(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Tables(e) => Some(e),
            CoreError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<anatomy_tables::TablesError> for CoreError {
    fn from(e: anatomy_tables::TablesError) -> Self {
        CoreError::Tables(e)
    }
}

impl From<anatomy_storage::StorageError> for CoreError {
    fn from(e: anatomy_storage::StorageError) -> Self {
        CoreError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CoreError::NotEligible {
            max_count: 60,
            n: 100,
            l: 2,
        };
        let s = e.to_string();
        assert!(s.contains("60") && s.contains("100") && s.contains('2'));
    }

    #[test]
    fn domain_too_small_names_both_numbers() {
        let e = CoreError::DomainTooSmall { domain: 2, l: 3 };
        let s = e.to_string();
        assert!(s.contains("2 distinct") && s.contains('3'), "{s}");
        use std::error::Error as _;
        assert!(e.source().is_none());
    }

    #[test]
    fn source_chains_substrate_errors() {
        use std::error::Error as _;
        let e = CoreError::Tables(anatomy_tables::TablesError::UnknownAttribute("x".into()));
        assert!(e.source().is_some());
        assert!(CoreError::InvalidL(1).source().is_none());
    }
}
