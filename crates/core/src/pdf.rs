//! Reconstructed per-tuple pdfs and their L2 error (Section 4).
//!
//! Every tuple `t` is a point in the `(d+1)`-dimensional space `DS`; its
//! true pdf `G_t` is a unit spike at `t` (Equation 9). A researcher
//! reconstructs an approximation from the published tables:
//!
//! * from a **generalized** table, `G^gen_t` spreads the unit mass
//!   uniformly over the `V = Π_i L(QI[i])` QI cells of the tuple's
//!   rectangle, with the sensitive value exact (Equation 10);
//! * from **anatomized** tables, `G^ana_t` concentrates the mass on `λ`
//!   spikes — the tuple's exact QI point combined with each sensitive value
//!   of its group, weighted `c(v_h)/|QI|` (Equation 11).
//!
//! The approximation error is the squared L2 distance `Err_t`
//! (Equation 12). Both closed forms used throughout the paper's proofs are
//! implemented here:
//!
//! * `Err^ana_t = (1 − c(v)/s)² + Σ_{h'≠h} c(v_{h'})²/s²` (proof of
//!   Theorem 2), where `v` is `t`'s real value and `s = |QI|`;
//! * `Err^gen_t = (1 − 1/V)² + (V−1)/V² = 1 − 1/V`.
//!
//! The worked example of Figure 2 (tuple 1 of Table 1 under the 2-diverse
//! partition) gives `Err^ana = 0.5`, matching the paper's "distance of
//! `G^ana_{t1}` is 0.5". (The paper quotes 22.5 for the generalized pdf of
//! the same tuple; Equation 12 as printed yields `1 − 1/40 = 0.975` — the
//! anatomy value and every downstream theorem are unaffected, and we follow
//! Equation 12.)

use anatomy_tables::stats::Histogram;
use anatomy_tables::Value;

/// A reconstructed pdf with finite support, for worked examples and plots:
/// pairs of (sensitive value, probability) at the tuple's exact QI point.
#[derive(Debug, Clone, PartialEq)]
pub struct SpikePdf {
    /// `(v_h, c(v_h)/|QI|)` pairs, in value order.
    pub spikes: Vec<(Value, f64)>,
}

impl SpikePdf {
    /// The anatomy reconstruction `G^ana_t` for a tuple in a group with
    /// sensitive histogram `hist` (Equation 11).
    pub fn from_group_histogram(hist: &Histogram) -> SpikePdf {
        let s = hist.total() as f64;
        SpikePdf {
            spikes: hist.nonzero().map(|(v, c)| (v, c as f64 / s)).collect(),
        }
    }

    /// Probability assigned to sensitive value `v`.
    pub fn probability(&self, v: Value) -> f64 {
        self.spikes
            .iter()
            .find(|(sv, _)| *sv == v)
            .map(|&(_, p)| p)
            .unwrap_or(0.0)
    }

    /// Total mass (should be 1 for a well-formed pdf).
    pub fn total_mass(&self) -> f64 {
        self.spikes.iter().map(|&(_, p)| p).sum()
    }

    /// Squared L2 distance from the true unit spike at sensitive value
    /// `real` (Equation 12 restricted to the pdf's support, which is exact
    /// because both pdfs vanish elsewhere).
    pub fn l2_error(&self, real: Value) -> f64 {
        let mut err = 0.0;
        let mut saw_real = false;
        for &(v, p) in &self.spikes {
            if v == real {
                err += (1.0 - p) * (1.0 - p);
                saw_real = true;
            } else {
                err += p * p;
            }
        }
        if !saw_real {
            // The reconstruction misses the true point entirely.
            err += 1.0;
        }
        err
    }
}

/// The generalized reconstruction `G^gen_t` (Equation 10) with its support
/// enumerated, for small volumes: the unit mass spread uniformly over the
/// `volume` QI cells of the tuple's rectangle, sensitive value exact.
///
/// Exists to cross-validate the closed form `Err^gen = 1 − 1/V` by
/// brute-force enumeration (Equation 12 summed cell by cell) — see the
/// tests and EXPERIMENTS.md's note on the paper's Figure 2 numbers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnumeratedGenPdf {
    /// Number of QI cells the rectangle covers.
    pub volume: u64,
}

impl EnumeratedGenPdf {
    /// The pdf value at every covered cell.
    pub fn density(&self) -> f64 {
        1.0 / self.volume as f64
    }

    /// Equation 12 by explicit summation over the support: one cell holds
    /// the true point (error `(1 − 1/V)²`), the other `V − 1` cells carry
    /// spurious mass `1/V` each.
    pub fn l2_error_enumerated(&self) -> f64 {
        let v = self.volume as f64;
        let density = self.density();
        let mut err = (1.0 - density) * (1.0 - density);
        // Summing (1/V)^2 over V-1 cells, term by term, exactly as a naive
        // evaluation of Equation 12 would.
        let mut rest = 0.0;
        for _ in 1..self.volume.min(1_000_000) {
            rest += density * density;
        }
        if self.volume > 1_000_000 {
            // Guard: closed-form the tail for absurd volumes.
            rest = (v - 1.0) * density * density;
        }
        err += rest;
        err
    }
}

/// `Err^ana_t` for a tuple with real sensitive value `real` in a group with
/// sensitive histogram `hist` (closed form from the proof of Theorem 2).
pub fn err_anatomy_tuple(hist: &Histogram, real: Value) -> f64 {
    let s = hist.total() as f64;
    debug_assert!(s > 0.0, "tuple's group cannot be empty");
    let c_real = hist.count(real) as f64;
    let sum_sq: f64 = hist.nonzero().map(|(_, c)| (c * c) as f64).sum();
    let other_sq = sum_sq - c_real * c_real;
    let a = 1.0 - c_real / s;
    a * a + other_sq / (s * s)
}

/// `Err^gen_t = 1 − 1/V` for a generalized cell covering `volume` discrete
/// QI points (`V = Π_i L(QI[i])`, Section 4).
pub fn err_generalization_tuple(volume: u64) -> f64 {
    debug_assert!(volume >= 1);
    1.0 - 1.0 / volume as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure 2's worked example: tuple 1 (age 23, pneumonia) in QI-group 1
    /// of Table 3, which holds {dyspepsia: 2, pneumonia: 2}.
    #[test]
    fn figure_2_anatomy_error_is_half() {
        let hist = Histogram::of_column(&[1, 1, 4, 4], 5);
        let pdf = SpikePdf::from_group_histogram(&hist);
        assert_eq!(pdf.spikes.len(), 2);
        assert!((pdf.probability(Value(4)) - 0.5).abs() < 1e-12);
        assert!((pdf.total_mass() - 1.0).abs() < 1e-12);
        // (1 - 1/2)^2 + (1/2)^2 = 0.5
        assert!((pdf.l2_error(Value(4)) - 0.5).abs() < 1e-12);
        assert!((err_anatomy_tuple(&hist, Value(4)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn generalization_error_follows_closed_form() {
        // Age interval [21, 60]: 40 values, sensitive exact.
        assert!((err_generalization_tuple(40) - (1.0 - 1.0 / 40.0)).abs() < 1e-12);
        // A point rectangle reconstructs exactly.
        assert_eq!(err_generalization_tuple(1), 0.0);
    }

    #[test]
    fn closed_form_matches_direct_l2() {
        // Group histogram {a: 3, b: 2, c: 1}, size 6.
        let hist = Histogram::of_column(&[0, 0, 0, 1, 1, 2], 4);
        let pdf = SpikePdf::from_group_histogram(&hist);
        for real in [Value(0), Value(1), Value(2)] {
            let direct = pdf.l2_error(real);
            let closed = err_anatomy_tuple(&hist, real);
            assert!(
                (direct - closed).abs() < 1e-12,
                "mismatch for {real}: {direct} vs {closed}"
            );
        }
    }

    #[test]
    fn missing_real_value_costs_full_unit() {
        let hist = Histogram::of_column(&[0, 1], 4);
        let pdf = SpikePdf::from_group_histogram(&hist);
        // Real value 3 never occurs in the group: squared error =
        // 1 (missed spike) + sum of squared spurious mass.
        let err = pdf.l2_error(Value(3));
        assert!((err - (1.0 + 0.25 + 0.25)).abs() < 1e-12);
    }

    #[test]
    fn anatomy_beats_generalization_in_the_example() {
        // The Section 4 "intuition": anatomy's 0.5 is far below
        // generalization's 1 - 1/40.
        let hist = Histogram::of_column(&[1, 1, 4, 4], 5);
        assert!(err_anatomy_tuple(&hist, Value(4)) < err_generalization_tuple(40));
    }

    #[test]
    fn single_value_group_has_zero_error() {
        // If a group had one sensitive value (not l-diverse, but legal for
        // the formula) the reconstruction is exact.
        let hist = Histogram::of_column(&[2, 2, 2], 4);
        assert!((err_anatomy_tuple(&hist, Value(2))).abs() < 1e-12);
    }

    #[test]
    fn enumerated_generalized_pdf_matches_closed_form() {
        // Brute-force Equation 12 equals 1 - 1/V for every volume — the
        // basis of EXPERIMENTS.md's note on the paper's 22.5.
        for volume in [1u64, 2, 5, 40, 1000, 2000] {
            let pdf = EnumeratedGenPdf { volume };
            let enumerated = pdf.l2_error_enumerated();
            let closed = err_generalization_tuple(volume);
            assert!(
                (enumerated - closed).abs() < 1e-9,
                "V = {volume}: {enumerated} vs {closed}"
            );
        }
        // Figure 2's rectangle: 40 age values.
        let fig2 = EnumeratedGenPdf { volume: 40 };
        assert!((fig2.l2_error_enumerated() - 0.975).abs() < 1e-12);
        assert!((fig2.density() - 0.025).abs() < 1e-12);
    }

    #[test]
    fn uniform_group_error_is_one_minus_one_over_lambda() {
        // λ distinct values with count 1 each: Err = 1 - 1/λ (Case 1 of
        // Theorem 4's proof).
        for lambda in 2..10u32 {
            let codes: Vec<u32> = (0..lambda).collect();
            let hist = Histogram::of_column(&codes, lambda);
            let err = err_anatomy_tuple(&hist, Value(0));
            let expected = 1.0 - 1.0 / lambda as f64;
            assert!((err - expected).abs() < 1e-12);
        }
    }
}
