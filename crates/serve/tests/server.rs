//! End-to-end protocol tests: a real server on a real socket, checked
//! against the in-process oracles.

use anatomy_core::{anatomize, AnatomizeConfig, AnatomizedTables};
use anatomy_query::{estimate_anatomy, evaluate_exact, workload_to_text, CountQuery, WorkloadSpec};
use anatomy_serve::{replay, Mode, ServeClient, ServeConfig, ServeError, ServedRelease, Server};
use anatomy_tables::{Attribute, Microdata, Schema, TableBuilder};
use std::io::{BufRead, BufReader, Write};

fn dataset(n: u32) -> Microdata {
    let schema = Schema::new(vec![
        Attribute::numerical("Age", 60),
        Attribute::categorical("Sex", 2),
        Attribute::categorical("Disease", 7),
    ])
    .unwrap();
    let mut b = TableBuilder::new(schema);
    for i in 0..n {
        b.push_row(&[(i * 7) % 60, i % 2, i % 7]).unwrap();
    }
    Microdata::with_leading_qi(b.finish(), 2).unwrap()
}

fn publish(md: &Microdata, l: usize) -> AnatomizedTables {
    let partition = anatomize(md, &AnatomizeConfig::new(l).with_seed(7)).unwrap();
    AnatomizedTables::publish(md, &partition, l).unwrap()
}

fn workload(md: &Microdata, count: usize, seed: u64) -> Vec<CountQuery> {
    WorkloadSpec {
        qd: 2,
        selectivity: 0.05,
        count,
        seed,
    }
    .generate(md)
    .unwrap()
}

fn exact_server(n: u32, cfg: ServeConfig) -> (Microdata, AnatomizedTables, Server) {
    let md = dataset(n);
    let tables = publish(&md, 4);
    let release = ServedRelease::exact("demo", md.clone(), tables.clone()).unwrap();
    let server = Server::bind(cfg, vec![release]).unwrap();
    (md, tables, server)
}

#[test]
fn served_answers_match_both_oracles_bit_for_bit() {
    let (md, tables, server) = exact_server(600, ServeConfig::default());
    let (addr, handle) = server.spawn();
    let queries = workload(&md, 64, 11);

    let mut client = ServeClient::connect(&addr).unwrap();
    client.ping().unwrap();

    let exact = client.batch_exact("demo", &queries).unwrap();
    for (q, &got) in queries.iter().zip(&exact) {
        assert_eq!(got, evaluate_exact(&md, q), "exact mismatch on {q}");
    }
    let est = client.batch_estimate("demo", &queries).unwrap();
    for (q, &got) in queries.iter().zip(&est) {
        let want = estimate_anatomy(&tables, q);
        assert!(
            got.to_bits() == want.to_bits(),
            "estimate not bit-identical on {q}: {got} vs {want}"
        );
    }

    let listing = client.releases().unwrap();
    assert_eq!(listing.len(), 1);
    assert!(listing[0].starts_with("demo "), "{listing:?}");
    assert!(listing[0].contains("exact=true"), "{listing:?}");

    client.shutdown().unwrap();
    let summary = handle.join().unwrap().unwrap();
    assert_eq!(summary.batches, 2);
    assert_eq!(summary.queries, 128);
}

#[test]
fn stats_endpoint_emits_a_validating_manifest() {
    let (md, _, server) = exact_server(600, ServeConfig::default());
    let (addr, handle) = server.spawn();
    let queries = workload(&md, 48, 3);
    let mut client = ServeClient::connect(&addr).unwrap();
    client.batch_exact("demo", &queries).unwrap();

    let stats = client.stats().unwrap();
    let summary = anatomy_obs::validate_manifest_json(&stats).unwrap();
    assert_eq!(summary.name, "serve");
    // The per-batch span must surface in the validated latency block.
    assert!(
        stats.contains("\"serve.batch\""),
        "no serve.batch latency entry in {stats}"
    );
    assert!(stats.contains("\"serve.batches\""), "{stats}");
    // The v2 index footprint and container-mix gauges must survive the
    // build-before-registry-enable ordering (re-reported in run()).
    assert!(
        stats.contains("\"query.index_v2_bytes\""),
        "no v2 index memory gauge in {stats}"
    );
    assert!(
        stats.contains("\"query.index_v2_containers_array\""),
        "no container-mix gauges in {stats}"
    );

    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn estimate_only_releases_refuse_exact_mode() {
    let md = dataset(400);
    let tables = publish(&md, 4);
    // Domains come from an empty table with the same schema — all a
    // pure QIT/ST consumer has.
    let empty = Microdata::new(
        TableBuilder::new(md.table().schema().clone()).finish(),
        md.qi_columns().to_vec(),
        md.sensitive_column(),
    )
    .unwrap();
    let release = ServedRelease::estimate_only("pub", empty, tables.clone());
    let (addr, handle) = Server::bind(ServeConfig::default(), vec![release])
        .unwrap()
        .spawn();
    let queries = workload(&md, 40, 5);
    let mut client = ServeClient::connect(&addr).unwrap();

    let err = client.batch_exact("pub", &queries).unwrap_err();
    assert!(
        matches!(&err, ServeError::Server(m) if m.contains("estimate only")),
        "{err}"
    );
    // The connection survives the refusal and still serves estimates.
    let est = client.batch_estimate("pub", &queries).unwrap();
    for (q, &got) in queries.iter().zip(&est) {
        assert_eq!(got.to_bits(), estimate_anatomy(&tables, q).to_bits());
    }
    // Unknown releases are a recoverable error too.
    let err = client.batch_estimate("nope", &queries).unwrap_err();
    assert!(
        matches!(&err, ServeError::Server(m) if m.contains("unknown release")),
        "{err}"
    );

    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}

#[cfg(unix)]
#[test]
fn unix_socket_round_trip_and_cleanup() {
    let path = std::env::temp_dir().join(format!("anatomy-serve-test-{}.sock", std::process::id()));
    let listen = format!("unix:{}", path.display());
    let (md, _, server) = exact_server(
        400,
        ServeConfig {
            listen: listen.clone(),
            ..ServeConfig::default()
        },
    );
    let (addr, handle) = server.spawn();
    assert_eq!(addr, listen);
    let queries = workload(&md, 40, 9);
    let mut client = ServeClient::connect(&addr).unwrap();
    let exact = client.batch_exact("demo", &queries).unwrap();
    for (q, &got) in queries.iter().zip(&exact) {
        assert_eq!(got, evaluate_exact(&md, q));
    }
    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();
    assert!(!path.exists(), "socket file not removed on shutdown");
}

#[test]
fn malformed_and_oversized_batches_error_and_close() {
    let (_, _, server) = exact_server(
        400,
        ServeConfig {
            max_batch: 8,
            ..ServeConfig::default()
        },
    );
    let (addr, handle) = server.spawn();

    // Raw socket: drive the wire grammar directly.
    let raw = |lines: &str| -> String {
        let mut s = std::net::TcpStream::connect(&addr).unwrap();
        s.write_all(lines.as_bytes()).unwrap();
        let mut rd = BufReader::new(s);
        let mut line = String::new();
        rd.read_line(&mut line).unwrap();
        line
    };

    let resp = raw("BATCH demo exact nine\n");
    assert!(resp.starts_with("ERR malformed BATCH header"), "{resp}");
    let resp = raw("BATCH demo exact 9\n"); // exceeds max_batch = 8
    assert!(resp.contains("exceeds max_batch"), "{resp}");
    let resp = raw("FROB\n");
    assert!(resp.starts_with("ERR unknown request"), "{resp}");
    // A batch whose body parses to fewer queries than the header claims
    // (a blank line) is an error, but the count keeps the stream in
    // sync so the connection stays open.
    let mut s = std::net::TcpStream::connect(&addr).unwrap();
    s.write_all(b"BATCH demo exact 2\ns=0\n\n").unwrap();
    let mut rd = BufReader::new(s.try_clone().unwrap());
    let mut line = String::new();
    rd.read_line(&mut line).unwrap();
    assert!(line.contains("parsed to 1 queries"), "{line}");
    s.write_all(b"PING\n").unwrap();
    line.clear();
    rd.read_line(&mut line).unwrap();
    assert_eq!(line, "OK 0\n");

    let mut client = ServeClient::connect(&addr).unwrap();
    client.shutdown().unwrap();
    let summary = handle.join().unwrap().unwrap();
    assert!(summary.errors >= 4, "summary: {summary:?}");
}

#[test]
fn replay_matches_oracle_across_threads() {
    let (md, _, server) = exact_server(600, ServeConfig::default());
    let (addr, handle) = server.spawn();
    let batches: Vec<Vec<CountQuery>> = (0..9).map(|i| workload(&md, 16, 100 + i)).collect();
    let (report, answers) = replay(&addr, "demo", Mode::Exact, &batches, 3).unwrap();
    assert_eq!(report.batches, 9);
    assert_eq!(report.queries, 9 * 16);
    for (batch, lines) in batches.iter().zip(&answers) {
        for (q, line) in batch.iter().zip(lines) {
            assert_eq!(line.parse::<u64>().unwrap(), evaluate_exact(&md, q));
        }
    }
    let mut client = ServeClient::connect(&addr).unwrap();
    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn saturating_a_one_slot_server_surfaces_busy() {
    // max_inflight = 1 and two hammering connections: at least one
    // batch must hit admission control and get an explicit BUSY (the
    // loadgen retries it to completion, so answers stay correct).
    let (md, _, server) = exact_server(
        2_000,
        ServeConfig {
            max_inflight: 1,
            ..ServeConfig::default()
        },
    );
    let (addr, handle) = server.spawn();
    // Wide, slow batches so evaluations overlap reliably.
    let batches: Vec<Vec<CountQuery>> = (0..6)
        .map(|i| {
            WorkloadSpec {
                qd: 2,
                selectivity: 0.4,
                count: 600,
                seed: 50 + i,
            }
            .generate(&md)
            .unwrap()
        })
        .collect();
    let mut saw_busy = 0;
    for attempt in 0..5 {
        let (report, answers) = replay(&addr, "demo", Mode::Exact, &batches, 3).unwrap();
        for (batch, lines) in batches.iter().zip(&answers) {
            for (q, line) in batch.iter().zip(lines) {
                assert_eq!(line.parse::<u64>().unwrap(), evaluate_exact(&md, q));
            }
        }
        saw_busy += report.busy;
        if saw_busy > 0 {
            break;
        }
        eprintln!("attempt {attempt}: no BUSY yet, retrying");
    }
    assert!(saw_busy > 0, "admission control never rejected a batch");
    let mut client = ServeClient::connect(&addr).unwrap();
    // BUSY must leave a registry trace, not just a wire response.
    let scrape = client.metrics().unwrap();
    assert!(
        anatomy_obs::sample_value(&scrape, "anatomy_serve_busy_rejections", &[]).unwrap() >= 1.0,
        "no busy_rejections counter in:\n{scrape}"
    );
    client.shutdown().unwrap();
    let summary = handle.join().unwrap().unwrap();
    assert!(summary.overloaded > 0);
}

#[test]
fn wire_format_is_workload_text() {
    // Pin the grammar itself: a hand-written request in the documented
    // format gets the documented response shape.
    let (md, _, server) = exact_server(400, ServeConfig::default());
    let (addr, handle) = server.spawn();
    let q = workload(&md, 1, 1).remove(0);
    let line = workload_to_text(std::slice::from_ref(&q));
    let mut s = std::net::TcpStream::connect(&addr).unwrap();
    s.write_all(format!("BATCH demo exact 1\n{line}").as_bytes())
        .unwrap();
    let mut rd = BufReader::new(s.try_clone().unwrap());
    let mut resp = String::new();
    rd.read_line(&mut resp).unwrap();
    assert_eq!(resp, "OK 1\n");
    resp.clear();
    rd.read_line(&mut resp).unwrap();
    assert_eq!(
        resp.trim_end().parse::<u64>().unwrap(),
        evaluate_exact(&md, &q)
    );
    s.write_all(b"SHUTDOWN\n").unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn metrics_endpoint_exposes_validating_windowed_scrapes() {
    // Fast ticks so window aggregates materialize within the test; the
    // fine ring still spans ~6s so traffic cannot age out mid-assert.
    let (md, _, server) = exact_server(
        600,
        ServeConfig {
            window: anatomy_obs::WindowConfig {
                tick: std::time::Duration::from_millis(10),
                fine_len: 600,
                coarse_every: 100,
                coarse_len: 60,
            },
            ..ServeConfig::default()
        },
    );
    let (addr, handle) = server.spawn();
    let mut client = ServeClient::connect(&addr).unwrap();

    let first = client.metrics().unwrap();
    let s1 = anatomy_obs::validate_exposition(&first).unwrap();
    assert!(s1.samples > 0, "empty first scrape:\n{first}");
    // The satellite instruments registered at bind must be visible even
    // before they fire, and our own connection holds the gauge open.
    assert!(first.contains("anatomy_serve_busy_rejections"), "{first}");
    assert!(first.contains("anatomy_serve_stats_requests"), "{first}");
    assert!(
        anatomy_obs::sample_value(&first, "anatomy_serve_connections_open", &[]).unwrap() >= 1.0,
        "own connection not in the gauge:\n{first}"
    );

    let stats_before =
        anatomy_obs::sample_value(&first, "anatomy_serve_stats_requests", &[]).unwrap();
    client.stats().unwrap();
    let queries = workload(&md, 32, 21);
    client.batch_exact("demo", &queries).unwrap();

    // Poll until the sampler absorbs the batch into the fine window.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    let second = loop {
        let text = client.metrics().unwrap();
        let windowed =
            anatomy_obs::sample_value(&text, "anatomy_serve_queries_rate", &[("window", "6s")]);
        if windowed.is_some_and(|v| v > 0.0) {
            break text;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "sampler never absorbed the batch:\n{text}"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    };
    let s2 = anatomy_obs::validate_exposition(&second).unwrap();
    let grew = anatomy_obs::check_counter_monotonic(&s1, &s2).unwrap();
    assert!(grew > 0, "no counters in common between scrapes");
    assert!(
        anatomy_obs::sample_value(&second, "anatomy_serve_stats_requests", &[]).unwrap()
            > stats_before,
        "STATS left no registry trace:\n{second}"
    );
    // The per-batch span surfaces as a summary family with windowed
    // quantiles capped by the windowed max.
    let p99 = anatomy_obs::sample_value(
        &second,
        "anatomy_span_ns_serve_batch",
        &[("window", "6s"), ("quantile", "0.99")],
    )
    .expect("windowed p99 for serve.batch");
    let max = anatomy_obs::sample_value(
        &second,
        "anatomy_span_ns_serve_batch_max",
        &[("window", "6s")],
    )
    .expect("windowed max for serve.batch");
    assert!(p99 <= max, "windowed p99 {p99} exceeds windowed max {max}");

    // GET /metrics serves the same exposition to stock HTTP scrapers.
    let mut s = std::net::TcpStream::connect(&addr).unwrap();
    s.write_all(b"GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();
    let mut raw = String::new();
    use std::io::Read as _;
    BufReader::new(s).read_to_string(&mut raw).unwrap();
    assert!(raw.starts_with("HTTP/1.1 200 OK\r\n"), "{raw}");
    let body = raw.split("\r\n\r\n").nth(1).expect("http body");
    anatomy_obs::validate_exposition(body).unwrap();
    assert!(body.contains("anatomy_serve_batches"), "{body}");
    // Unknown paths get a 404, not a protocol ERR.
    let mut s = std::net::TcpStream::connect(&addr).unwrap();
    s.write_all(b"GET /nope HTTP/1.1\r\n\r\n").unwrap();
    let mut raw = String::new();
    BufReader::new(s).read_to_string(&mut raw).unwrap();
    assert!(raw.starts_with("HTTP/1.1 404"), "{raw}");

    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn slowlog_captures_batches_with_resolving_trace_exemplars() {
    anatomy_obs::tracer().set_enabled(true);
    let (md, _, server) = exact_server(
        600,
        ServeConfig {
            // Log every batch: the test pins the ring, wire format, and
            // trace linkage, not the threshold (unit-tested in slowlog).
            slowlog_threshold: Some(std::time::Duration::ZERO),
            slowlog_capacity: 4,
            ..ServeConfig::default()
        },
    );
    let (addr, handle) = server.spawn();
    let mut client = ServeClient::connect(&addr).unwrap();
    for seed in 0..6 {
        client
            .batch_exact("demo", &workload(&md, 8, 30 + seed))
            .unwrap();
    }

    let entries = client.slowlog(10).unwrap();
    assert_eq!(entries.len(), 4, "capacity bounds retention: {entries:?}");
    assert_eq!(entries[0].seq, 5, "newest first");
    for e in &entries {
        assert_eq!(e.release, "demo");
        assert_eq!(e.mode, Mode::Exact);
        assert_eq!(e.queries, 8);
        assert_eq!(e.threshold_ns, 0);
        assert_ne!(e.span_id, 0, "tracing was on, span id must resolve");
        assert!(!e.query.is_empty(), "missing workload exemplar");
    }
    let two = client.slowlog(2).unwrap();
    assert_eq!(two.len(), 2);
    assert_eq!(two[0], entries[0]);

    client.shutdown().unwrap();
    let summary = handle.join().unwrap().unwrap();
    assert_eq!(summary.slow.len(), 4, "shutdown dump mirrors the ring");
    assert_eq!(summary.slow[0], entries[0]);

    // Every exemplar must point at a real span in the exported trace.
    let snap = anatomy_obs::tracer().snapshot();
    let begun: std::collections::HashSet<u64> = snap
        .threads
        .iter()
        .flat_map(|t| t.events.iter())
        .filter_map(|ev| match ev.kind {
            anatomy_obs::EventKind::SpanBegin { id, .. } => Some(id),
            _ => None,
        })
        .collect();
    for e in &summary.slow {
        assert!(
            begun.contains(&e.span_id),
            "slowlog span id {} not in the trace journal",
            e.span_id
        );
    }
    // A full trace validation only means something when nothing was
    // dropped (concurrent tests share the process journals).
    if snap.dropped_count() == 0 {
        anatomy_obs::validate_trace(&snap.to_chrome_json()).unwrap();
    } else {
        eprintln!("skipping validate_trace: {} dropped", snap.dropped_count());
    }
}
