//! Blocking client plus the multi-threaded loadgen replay used by
//! `bench_serve` and the CI smoke.

use crate::protocol::{connect_stream, LineEvent, LineReader, Mode, ServeError};
use anatomy_query::{workload_to_text, CountQuery};
use std::fmt::Write as _;
use std::io::{BufWriter, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Default per-read timeout: a server silent this long is treated as
/// gone rather than blocking the client forever.
const READ_TIMEOUT: Duration = Duration::from_secs(30);

/// A blocking protocol client over one connection.
pub struct ServeClient {
    rd: LineReader,
    wr: BufWriter<Box<dyn crate::protocol::Stream>>,
}

impl ServeClient {
    /// Connect to `addr` (`HOST:PORT` or `unix:PATH`).
    pub fn connect(addr: &str) -> std::io::Result<ServeClient> {
        let stream = connect_stream(addr)?;
        stream.set_read_timeout_opt(Some(READ_TIMEOUT))?;
        let writer = stream.try_clone_stream()?;
        Ok(ServeClient {
            rd: LineReader::new(stream),
            wr: BufWriter::with_capacity(1 << 16, writer),
        })
    }

    fn read_line(&mut self) -> Result<String, ServeError> {
        match self.rd.next_line()? {
            LineEvent::Line(l) => Ok(l),
            LineEvent::Eof => Err(ServeError::Protocol(
                "server closed the connection".to_string(),
            )),
            LineEvent::TimedOut => Err(ServeError::Protocol(format!(
                "no response within {READ_TIMEOUT:?}"
            ))),
        }
    }

    /// Read a status line and its payload lines.
    fn read_response(&mut self) -> Result<Vec<String>, ServeError> {
        let status = self.read_line()?;
        let mut parts = status.split_ascii_whitespace();
        match parts.next() {
            Some("OK") => {
                let count: usize = parts
                    .next()
                    .and_then(|c| c.parse().ok())
                    .ok_or_else(|| ServeError::Protocol(format!("bad OK line `{status}`")))?;
                (0..count).map(|_| self.read_line()).collect()
            }
            Some("BUSY") => {
                let mut next = || parts.next().and_then(|v| v.parse::<u64>().ok());
                let (in_flight, max) = (next().unwrap_or(0), next().unwrap_or(0));
                Err(ServeError::Busy { in_flight, max })
            }
            Some("ERR") => Err(ServeError::Server(
                status.strip_prefix("ERR ").unwrap_or(&status).to_string(),
            )),
            _ => Err(ServeError::Protocol(format!("bad status line `{status}`"))),
        }
    }

    fn request(&mut self, line: &str) -> Result<Vec<String>, ServeError> {
        self.wr.write_all(line.as_bytes())?;
        self.wr.write_all(b"\n")?;
        self.wr.flush()?;
        self.read_response()
    }

    /// Liveness check.
    pub fn ping(&mut self) -> Result<(), ServeError> {
        self.request("PING").map(|_| ())
    }

    /// The loaded releases, one description line each.
    pub fn releases(&mut self) -> Result<Vec<String>, ServeError> {
        self.request("RELEASES")
    }

    /// The stats endpoint: one line of `RunManifest` JSON.
    pub fn stats(&mut self) -> Result<String, ServeError> {
        let lines = self.request("STATS")?;
        lines
            .into_iter()
            .next()
            .ok_or_else(|| ServeError::Protocol("STATS returned no payload".to_string()))
    }

    /// The metrics endpoint: a Prometheus text exposition of the
    /// server's registry plus rolling-window aggregates, as one string
    /// (trailing newline included).
    pub fn metrics(&mut self) -> Result<String, ServeError> {
        let lines = self.request("METRICS")?;
        let mut text = String::with_capacity(lines.iter().map(|l| l.len() + 1).sum());
        for l in &lines {
            text.push_str(l);
            text.push('\n');
        }
        Ok(text)
    }

    /// The newest `n` slow-query log entries, newest first.
    pub fn slowlog(&mut self, n: usize) -> Result<Vec<crate::slowlog::SlowEntry>, ServeError> {
        self.request(&format!("SLOWLOG {n}"))?
            .iter()
            .map(|l| crate::slowlog::SlowEntry::from_json(l).map_err(ServeError::Protocol))
            .collect()
    }

    /// Ask the server to stop accepting and exit cleanly.
    pub fn shutdown(&mut self) -> Result<(), ServeError> {
        self.request("SHUTDOWN").map(|_| ())
    }

    /// Send one batch and return the raw answer lines.
    pub fn batch_lines(
        &mut self,
        release: &str,
        mode: Mode,
        queries: &[CountQuery],
    ) -> Result<Vec<String>, ServeError> {
        let mut req = String::with_capacity(24 * queries.len() + 32);
        let _ = writeln!(req, "BATCH {release} {mode} {}", queries.len());
        // One `workload_to_text` line per query — the exact format the
        // server's `workload_from_text` parses.
        req.push_str(&workload_to_text(queries));
        self.wr.write_all(req.as_bytes())?;
        self.wr.flush()?;
        let lines = self.read_response()?;
        if lines.len() != queries.len() {
            return Err(ServeError::Protocol(format!(
                "sent {} queries, got {} answers",
                queries.len(),
                lines.len()
            )));
        }
        Ok(lines)
    }

    /// Exact COUNT answers for one batch.
    pub fn batch_exact(
        &mut self,
        release: &str,
        queries: &[CountQuery],
    ) -> Result<Vec<u64>, ServeError> {
        self.batch_lines(release, Mode::Exact, queries)?
            .into_iter()
            .map(|l| {
                l.parse::<u64>()
                    .map_err(|_| ServeError::Protocol(format!("non-integer exact answer `{l}`")))
            })
            .collect()
    }

    /// Anatomy estimates for one batch. Rust's `f64` text round-trips
    /// exactly, so these are bit-for-bit the server's values.
    pub fn batch_estimate(
        &mut self,
        release: &str,
        queries: &[CountQuery],
    ) -> Result<Vec<f64>, ServeError> {
        self.batch_lines(release, Mode::Estimate, queries)?
            .into_iter()
            .map(|l| {
                l.parse::<f64>()
                    .map_err(|_| ServeError::Protocol(format!("non-float estimate `{l}`")))
            })
            .collect()
    }
}

/// What a [`replay`] run did.
#[derive(Debug, Clone, Copy, Default)]
pub struct LoadgenReport {
    /// Queries answered with `OK`.
    pub queries: u64,
    /// Batches answered with `OK`.
    pub batches: u64,
    /// `BUSY` rejections absorbed (each batch retries until accepted).
    pub busy: u64,
    /// Wall time of the whole replay.
    pub elapsed: Duration,
}

impl LoadgenReport {
    /// Sustained throughput over the replay wall time.
    pub fn queries_per_sec(&self) -> f64 {
        if self.elapsed.as_secs_f64() == 0.0 {
            return 0.0;
        }
        self.queries as f64 / self.elapsed.as_secs_f64()
    }
}

/// Replay `batches` against `release` from `threads` concurrent
/// connections (batch `i` goes to thread `i % threads`), retrying
/// `BUSY` rejections with a short backoff. Returns the answers in
/// batch order alongside the throughput report.
pub fn replay(
    addr: &str,
    release: &str,
    mode: Mode,
    batches: &[Vec<CountQuery>],
    threads: usize,
) -> Result<(LoadgenReport, Vec<Vec<String>>), ServeError> {
    let threads = threads.max(1);
    let busy = AtomicU64::new(0);
    let mut answers: Vec<Option<Vec<String>>> = vec![None; batches.len()];
    let start = Instant::now();
    let results: Vec<Result<(), ServeError>> = std::thread::scope(|s| {
        let mut slots: Vec<&mut [Option<Vec<String>>]> = Vec::new();
        let mut rest = answers.as_mut_slice();
        // Interleaved ownership is awkward to split; round-robin by
        // chunking instead: thread t takes batches [t*per, ...).
        let per = batches.len().div_ceil(threads);
        for _ in 0..threads {
            let (head, tail) = rest.split_at_mut(per.min(rest.len()));
            slots.push(head);
            rest = tail;
        }
        let busy = &busy;
        let handles: Vec<_> = slots
            .into_iter()
            .enumerate()
            .map(|(t, out)| {
                s.spawn(move || -> Result<(), ServeError> {
                    if out.is_empty() {
                        return Ok(());
                    }
                    let mut client = ServeClient::connect(addr)?;
                    for (i, slot) in out.iter_mut().enumerate() {
                        let queries = &batches[t * per + i];
                        loop {
                            match client.batch_lines(release, mode, queries) {
                                Ok(lines) => {
                                    *slot = Some(lines);
                                    break;
                                }
                                Err(ServeError::Busy { .. }) => {
                                    busy.fetch_add(1, Ordering::Relaxed);
                                    std::thread::sleep(Duration::from_micros(200));
                                }
                                Err(e) => return Err(e),
                            }
                        }
                    }
                    Ok(())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("loadgen thread panicked"))
            .collect()
    });
    let elapsed = start.elapsed();
    for r in results {
        r?;
    }
    let answers: Vec<Vec<String>> = answers
        .into_iter()
        .map(|a| a.expect("batch filled"))
        .collect();
    let report = LoadgenReport {
        queries: batches.iter().map(|b| b.len() as u64).sum(),
        batches: batches.len() as u64,
        busy: busy.load(Ordering::Relaxed),
        elapsed,
    };
    Ok((report, answers))
}
