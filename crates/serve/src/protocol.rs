//! Wire-level pieces shared by the server and the client: the stream
//! abstraction over TCP/unix sockets, a timeout-aware line reader, and
//! the typed error both sides speak.

use std::fmt;
use std::io::{self, Read, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::time::Duration;

/// Longest accepted request/response line, in bytes. A line past this is
/// a protocol violation (or a hostile peer), not a big query.
pub const MAX_LINE: usize = 1 << 20;

/// Evaluation mode of a `BATCH` request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// `evaluate_exact` semantics: needs a microdata-backed release.
    Exact,
    /// The paper's Section 6 anatomy estimator.
    Estimate,
}

impl Mode {
    /// The wire keyword.
    pub fn as_str(self) -> &'static str {
        match self {
            Mode::Exact => "exact",
            Mode::Estimate => "estimate",
        }
    }

    /// Parse the wire keyword.
    pub fn parse(s: &str) -> Option<Mode> {
        match s {
            "exact" => Some(Mode::Exact),
            "estimate" => Some(Mode::Estimate),
            _ => None,
        }
    }
}

impl fmt::Display for Mode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Everything that can go wrong on a client round trip.
#[derive(Debug)]
pub enum ServeError {
    /// Socket-level failure.
    Io(io::Error),
    /// The server refused the batch under admission control.
    Busy {
        /// Batches in flight when the request arrived.
        in_flight: u64,
        /// The server's admission limit.
        max: u64,
    },
    /// The server answered `ERR <message>`.
    Server(String),
    /// The peer broke the wire grammar (or went silent past a timeout).
    Protocol(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "serve i/o error: {e}"),
            ServeError::Busy { in_flight, max } => {
                write!(f, "server busy: {in_flight}/{max} batches in flight")
            }
            ServeError::Server(msg) => write!(f, "server error: {msg}"),
            ServeError::Protocol(msg) => write!(f, "protocol error: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> ServeError {
        ServeError::Io(e)
    }
}

/// A duplex byte stream the protocol can run over. Object-safe so the
/// server and client handle TCP and unix sockets uniformly.
pub trait Stream: Read + Write + Send {
    /// Clone the underlying socket handle (reader/writer split).
    fn try_clone_stream(&self) -> io::Result<Box<dyn Stream>>;
    /// Bound blocking reads, `None` for blocking forever.
    fn set_read_timeout_opt(&self, d: Option<Duration>) -> io::Result<()>;
}

impl Stream for TcpStream {
    fn try_clone_stream(&self) -> io::Result<Box<dyn Stream>> {
        Ok(Box::new(self.try_clone()?))
    }

    fn set_read_timeout_opt(&self, d: Option<Duration>) -> io::Result<()> {
        self.set_read_timeout(d)
    }
}

#[cfg(unix)]
impl Stream for UnixStream {
    fn try_clone_stream(&self) -> io::Result<Box<dyn Stream>> {
        Ok(Box::new(self.try_clone()?))
    }

    fn set_read_timeout_opt(&self, d: Option<Duration>) -> io::Result<()> {
        self.set_read_timeout(d)
    }
}

/// Connect to a server address: `unix:PATH` or `HOST:PORT`.
pub fn connect_stream(addr: &str) -> io::Result<Box<dyn Stream>> {
    if let Some(path) = addr.strip_prefix("unix:") {
        #[cfg(unix)]
        {
            return Ok(Box::new(UnixStream::connect(path)?));
        }
        #[cfg(not(unix))]
        {
            let _ = path;
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix sockets are not available on this platform",
            ));
        }
    }
    Ok(Box::new(TcpStream::connect(addr)?))
}

/// What one attempt to pull a line off the wire produced.
#[derive(Debug)]
pub enum LineEvent {
    /// A complete line, `\n` (and any trailing `\r`) stripped.
    Line(String),
    /// The peer closed the stream.
    Eof,
    /// The read timed out; any partial line stays buffered, so the next
    /// call resumes where this one stopped.
    TimedOut,
}

/// A line reader that survives read timeouts without losing buffered
/// bytes — `BufReader::read_line` cannot promise that, and the server
/// needs timeouts to notice shutdown while a connection sits idle.
pub struct LineReader {
    stream: Box<dyn Stream>,
    buf: Vec<u8>,
    /// Bytes of `buf` already returned as lines.
    consumed: usize,
}

impl LineReader {
    /// Wrap `stream`; reads are pulled in 64 KiB chunks.
    pub fn new(stream: Box<dyn Stream>) -> LineReader {
        LineReader {
            stream,
            buf: Vec::new(),
            consumed: 0,
        }
    }

    fn take_line(&mut self) -> Option<io::Result<String>> {
        let nl = self.buf[self.consumed..].iter().position(|&b| b == b'\n')?;
        let end = self.consumed + nl;
        let line = &self.buf[self.consumed..end];
        let line = line.strip_suffix(b"\r").unwrap_or(line);
        let out = match std::str::from_utf8(line) {
            Ok(s) => Ok(s.to_string()),
            Err(_) => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "non-UTF-8 line on the wire",
            )),
        };
        self.consumed = end + 1;
        // Reclaim the consumed prefix once it dominates the buffer.
        if self.consumed > 4096 && self.consumed * 2 > self.buf.len() {
            self.buf.drain(..self.consumed);
            self.consumed = 0;
        }
        Some(out)
    }

    /// Pull the next line, a timeout, or EOF off the stream.
    pub fn next_line(&mut self) -> io::Result<LineEvent> {
        loop {
            if let Some(line) = self.take_line() {
                return line.map(LineEvent::Line);
            }
            if self.buf.len() - self.consumed > MAX_LINE {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "line exceeds the protocol's 1 MiB cap",
                ));
            }
            let mut chunk = [0u8; 1 << 16];
            match self.stream.read(&mut chunk) {
                Ok(0) => return Ok(LineEvent::Eof),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return Ok(LineEvent::TimedOut);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn mode_round_trips() {
        for m in [Mode::Exact, Mode::Estimate] {
            assert_eq!(Mode::parse(m.as_str()), Some(m));
        }
        assert_eq!(Mode::parse("approximate"), None);
    }

    #[test]
    fn line_reader_splits_and_survives_timeouts() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(b"alpha\nbe").unwrap();
            s.flush().unwrap();
            std::thread::sleep(Duration::from_millis(120));
            s.write_all(b"ta\r\n").unwrap();
        });
        let (conn, _) = listener.accept().unwrap();
        conn.set_read_timeout(Some(Duration::from_millis(30)))
            .unwrap();
        let mut rd = LineReader::new(Box::new(conn));
        match rd.next_line().unwrap() {
            LineEvent::Line(l) => assert_eq!(l, "alpha"),
            other => panic!("expected line, got {other:?}"),
        }
        // The partial "be" is buffered across however many timeouts the
        // sender's pause produces, then completes as "beta".
        let mut timeouts = 0;
        loop {
            match rd.next_line().unwrap() {
                LineEvent::TimedOut => timeouts += 1,
                LineEvent::Line(l) => {
                    assert_eq!(l, "beta");
                    break;
                }
                LineEvent::Eof => panic!("unexpected EOF"),
            }
        }
        assert!(timeouts >= 1, "the pause should surface as a timeout");
        match rd.next_line().unwrap() {
            LineEvent::Eof => {}
            other => panic!("expected EOF, got {other:?}"),
        }
        writer.join().unwrap();
    }
}
