//! A release loaded into the server, with its query index built once.

use anatomy_audit::{audit_release_for, AuditReport, Stage};
use anatomy_core::AnatomizedTables;
use anatomy_query::{QueryError, QueryIndexV2};
use anatomy_tables::Microdata;

/// One published release the server answers queries against. The
/// compressed [`QueryIndexV2`] is built at load time and cached for the
/// server's lifetime — the whole point of serving residently — and its
/// batch evaluator answers each incoming batch in one clustered pass.
pub struct ServedRelease {
    name: String,
    tables: AnatomizedTables,
    index: QueryIndexV2,
    /// Carries the attribute domains query parsing validates against.
    /// For [`ServedRelease::exact`] this is the real microdata; for
    /// [`ServedRelease::estimate_only`] an empty table with the schema.
    parse_md: Microdata,
    exact: bool,
}

impl ServedRelease {
    /// A microdata-backed release: serves both `exact` and `estimate`
    /// batches. Fails if `md` and `tables` disagree on length or arity.
    pub fn exact(
        name: impl Into<String>,
        md: Microdata,
        tables: AnatomizedTables,
    ) -> Result<ServedRelease, QueryError> {
        let index = QueryIndexV2::build(&md, &tables)?;
        Ok(ServedRelease {
            name: name.into(),
            tables,
            index,
            parse_md: md,
            exact: true,
        })
    }

    /// A release loaded from its published QIT/ST pair alone: serves
    /// `estimate` batches only (the microdata needed for exact answers
    /// is exactly what an anatomized release withholds). `domains` is a
    /// possibly-empty [`Microdata`] carrying the schema the release was
    /// published under, used to validate incoming query text.
    pub fn estimate_only(
        name: impl Into<String>,
        domains: Microdata,
        tables: AnatomizedTables,
    ) -> ServedRelease {
        let index = QueryIndexV2::from_published(&tables);
        ServedRelease {
            name: name.into(),
            tables,
            index,
            parse_md: domains,
            exact: false,
        }
    }

    /// The name clients address batches to.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The published pair.
    pub fn tables(&self) -> &AnatomizedTables {
        &self.tables
    }

    /// The cached index.
    pub fn index(&self) -> &QueryIndexV2 {
        &self.index
    }

    /// The microdata whose domains incoming queries are parsed against.
    pub fn parse_md(&self) -> &Microdata {
        &self.parse_md
    }

    /// Whether `exact` batches are available.
    pub fn serves_exact(&self) -> bool {
        self.exact
    }

    /// Run every invariant the `anatomy-audit` registry lists for the
    /// `serve` stage over the loaded release. Serving a release that
    /// fails any of these would answer queries from a corrupt or
    /// non-diverse publication, so callers should refuse to bind on a
    /// failed report.
    pub fn audit(&self) -> AuditReport {
        audit_release_for(Stage::Serve, &self.tables, self.tables.l())
    }
}
