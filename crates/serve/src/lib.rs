//! # anatomy-serve
//!
//! A resident query server for anatomized releases. Every other entry
//! point in the workspace is a one-shot process that re-parses the
//! release and rebuilds the bitmap [`QueryIndex`](anatomy_query::QueryIndex)
//! per invocation; this crate loads a release **once**, caches the
//! index, and answers COUNT-query batches over a socket for as long as
//! the process lives — amortizing the milliseconds-scale build across
//! millions of microseconds-scale queries (ROADMAP open item 1).
//!
//! Zero dependencies beyond the workspace: the protocol is
//! newline-delimited UTF-8 text over `std::net` (TCP) or
//! `std::os::unix::net` (unix sockets), batches are length-delimited by
//! a query count in the request header, and the stats endpoint replies
//! with the same single-line [`RunManifest`](anatomy_obs::RunManifest)
//! JSON that `check_manifest` validates.
//!
//! ## Protocol grammar
//!
//! Requests are single lines, except `BATCH` which is followed by its
//! body. Every response starts with a status line:
//!
//! ```text
//! request  := "PING" | "RELEASES" | "STATS" | "METRICS"
//!           | "SLOWLOG" [SP n] | "SHUTDOWN"
//!           | "BATCH" SP name SP mode SP count NL query-line{count}
//! mode     := "exact" | "estimate"
//! query-line := the `anatomy_query::workload_to_text` line format,
//!               e.g. "qi0=1|2;s=0"
//!
//! response := "OK" SP count NL payload-line{count}
//!           | "BUSY" SP in-flight SP max-in-flight NL
//!           | "ERR" SP message NL
//! ```
//!
//! `BATCH` answers one payload line per query, in request order: a
//! decimal `u64` for `exact` mode, a shortest-round-trip `f64` for
//! `estimate` mode (Rust's float `Display` guarantees the printed text
//! parses back to the identical bits, so served answers stay bit-for-bit
//! comparable to in-process evaluation). `STATS` answers one line of
//! manifest JSON. `PING` and `SHUTDOWN` answer `OK 0`.
//!
//! ## Continuous monitoring
//!
//! `METRICS` answers a Prometheus text exposition
//! ([`render_exposition`](anatomy_obs::render_exposition)) of the
//! process registry plus rolling-window aggregates — a sampler thread
//! runs for the server's lifetime, folding registry deltas into fixed
//! rings of time buckets (60×1s and 60×1m by default, see
//! [`anatomy_obs::WindowConfig`]), so scrapes carry per-window rates
//! and rolling p50/p90/p99/max at O(ring) memory and zero added
//! write-path cost. The same listener also answers HTTP
//! `GET /metrics` (one response per connection, then close), so stock
//! scrapers need no protocol shim.
//!
//! `SLOWLOG n` answers the newest `n` slow-query log entries (all
//! retained entries when `n` is omitted), newest first, one JSON
//! object per line ([`SlowEntry`]): batches whose wall time reached
//! `slowlog_threshold` are recorded with the workload's first line and
//! the `serve.batch` span's journal id, linking each outlier to its
//! span in the exported trace when the process tracer is on.
//!
//! ## Overload semantics
//!
//! The server evaluates at most `max_inflight` batches concurrently
//! (admission control across all connections). A batch arriving beyond
//! that is **not queued**: its body is drained and the client gets an
//! explicit `BUSY` line, so back-pressure is visible instead of latent.
//! Oversized batches (`count > max_batch`) and malformed headers are
//! protocol errors: the server answers `ERR` and closes the connection,
//! because the stream can no longer be trusted to be in sync.
//!
//! ## Quick start
//!
//! ```
//! use anatomy_core::{anatomize, AnatomizeConfig, AnatomizedTables};
//! use anatomy_query::{evaluate_exact, WorkloadSpec};
//! use anatomy_serve::{Mode, ServeClient, ServeConfig, ServedRelease, Server};
//! # use anatomy_tables::{Attribute, Microdata, Schema, TableBuilder};
//! # let schema = Schema::new(vec![
//! #     Attribute::numerical("Age", 50),
//! #     Attribute::categorical("Disease", 7),
//! # ]).unwrap();
//! # let mut b = TableBuilder::new(schema);
//! # for i in 0..120u32 { b.push_row(&[i % 50, i % 7]).unwrap(); }
//! # let md = Microdata::with_leading_qi(b.finish(), 1).unwrap();
//!
//! let partition = anatomize(&md, &AnatomizeConfig::new(4)).unwrap();
//! let tables = AnatomizedTables::publish(&md, &partition, 4).unwrap();
//! let release = ServedRelease::exact("demo", md.clone(), tables).unwrap();
//!
//! let server = Server::bind(ServeConfig::default(), vec![release]).unwrap();
//! let (addr, handle) = server.spawn();
//!
//! let queries = WorkloadSpec { qd: 1, selectivity: 0.1, count: 8, seed: 7 }
//!     .generate(&md)
//!     .unwrap();
//! let mut client = ServeClient::connect(&addr).unwrap();
//! let served = client.batch_exact("demo", &queries).unwrap();
//! for (q, &got) in queries.iter().zip(&served) {
//!     assert_eq!(got, evaluate_exact(&md, q));
//! }
//! client.shutdown().unwrap();
//! handle.join().unwrap().unwrap();
//! ```

pub mod client;
pub mod protocol;
pub mod release;
pub mod server;
pub mod slowlog;

pub use client::{replay, LoadgenReport, ServeClient};
pub use protocol::{Mode, ServeError};
pub use release::ServedRelease;
pub use server::{ServeConfig, ServeSummary, Server};
pub use slowlog::{SlowEntry, SlowLog};
