//! The slow-query log: bounded, threshold-sampled batch outliers with
//! trace exemplars.
//!
//! Aggregates (windows, percentiles) say *that* something was slow;
//! the slow-query log says *which request*. Every served batch whose
//! wall time reaches the configured threshold is recorded: the release
//! and mode, the first workload line as an exemplar of what ran, the
//! latency, the connection it arrived on, and the `serve.batch` span's
//! journal id — so when the process tracer is on, an entry links
//! directly to its span in the exported Perfetto trace (`span_id` is
//! `0` while tracing is off).
//!
//! The log is a fixed ring: the newest `capacity` entries win, `seq`
//! keeps growing, so `seq - len` entries have been evicted. Clients
//! read it with the `SLOWLOG n` verb (newest first, one JSON object
//! per line); the server dumps it on shutdown.

use crate::protocol::Mode;
use anatomy_obs::Json;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Longest exemplar kept from the batch body's first line.
const MAX_QUERY_CHARS: usize = 256;

/// One slow batch.
#[derive(Debug, Clone, PartialEq)]
pub struct SlowEntry {
    /// Monotone id; `seq` of the oldest retained entry reveals how many
    /// were evicted.
    pub seq: u64,
    /// Release the batch addressed.
    pub release: String,
    /// `exact` or `estimate`.
    pub mode: Mode,
    /// Queries in the batch.
    pub queries: u64,
    /// Wall time of evaluation plus answer formatting.
    pub latency_ns: u64,
    /// Threshold in force when the entry was recorded.
    pub threshold_ns: u64,
    /// Server-side connection id the batch arrived on.
    pub conn: u64,
    /// The `serve.batch` span's trace-journal id (`0` = tracing off).
    pub span_id: u64,
    /// First line of the batch body, truncated to 256 chars.
    pub query: String,
}

impl SlowEntry {
    /// One-line JSON object, the `SLOWLOG` wire format.
    pub fn to_json(&self) -> String {
        Json::Obj(vec![
            ("seq".into(), Json::Num(self.seq as f64)),
            ("release".into(), Json::Str(self.release.clone())),
            ("mode".into(), Json::Str(self.mode.as_str().to_string())),
            ("queries".into(), Json::Num(self.queries as f64)),
            ("latency_ns".into(), Json::Num(self.latency_ns as f64)),
            ("threshold_ns".into(), Json::Num(self.threshold_ns as f64)),
            ("conn".into(), Json::Num(self.conn as f64)),
            ("span_id".into(), Json::Num(self.span_id as f64)),
            ("query".into(), Json::Str(self.query.clone())),
        ])
        .render(false)
    }

    /// Parse the wire format back (used by clients and the CI smoke).
    pub fn from_json(line: &str) -> Result<SlowEntry, String> {
        let v = Json::parse(line)?;
        let num = |key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("slowlog entry missing numeric `{key}`"))
        };
        let text = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(Json::as_str)
                .map(String::from)
                .ok_or_else(|| format!("slowlog entry missing string `{key}`"))
        };
        let mode_str = text("mode")?;
        let mode = Mode::parse(&mode_str).ok_or_else(|| format!("bad mode `{mode_str}`"))?;
        Ok(SlowEntry {
            seq: num("seq")?,
            release: text("release")?,
            mode,
            queries: num("queries")?,
            latency_ns: num("latency_ns")?,
            threshold_ns: num("threshold_ns")?,
            conn: num("conn")?,
            span_id: num("span_id")?,
            query: text("query")?,
        })
    }
}

/// The bounded log. Recording takes the ring mutex only *after* the
/// threshold check, so the fast path for sub-threshold batches is one
/// comparison against an already-measured latency.
#[derive(Debug)]
pub struct SlowLog {
    /// `None` disables recording entirely.
    threshold: Option<Duration>,
    capacity: usize,
    seq: AtomicU64,
    ring: Mutex<VecDeque<SlowEntry>>,
}

fn lock(m: &Mutex<VecDeque<SlowEntry>>) -> MutexGuard<'_, VecDeque<SlowEntry>> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl SlowLog {
    pub fn new(threshold: Option<Duration>, capacity: usize) -> SlowLog {
        SlowLog {
            threshold,
            capacity: capacity.max(1),
            seq: AtomicU64::new(0),
            ring: Mutex::new(VecDeque::new()),
        }
    }

    /// The active threshold, if recording is on.
    pub fn threshold(&self) -> Option<Duration> {
        self.threshold
    }

    /// Record one served batch if it crossed the threshold. Returns
    /// whether it was logged.
    #[allow(clippy::too_many_arguments)]
    pub fn observe(
        &self,
        release: &str,
        mode: Mode,
        queries: u64,
        latency: Duration,
        conn: u64,
        span_id: u64,
        body: &str,
    ) -> bool {
        let Some(threshold) = self.threshold else {
            return false;
        };
        if latency < threshold {
            return false;
        }
        let first_line = body.lines().next().unwrap_or("");
        let query: String = first_line.chars().take(MAX_QUERY_CHARS).collect();
        let entry = SlowEntry {
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            release: release.to_string(),
            mode,
            queries,
            latency_ns: latency.as_nanos().min(u64::MAX as u128) as u64,
            threshold_ns: threshold.as_nanos().min(u64::MAX as u128) as u64,
            conn,
            span_id,
            query,
        };
        let mut ring = lock(&self.ring);
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(entry);
        true
    }

    /// The newest `n` entries, newest first.
    pub fn recent(&self, n: usize) -> Vec<SlowEntry> {
        lock(&self.ring).iter().rev().take(n).cloned().collect()
    }

    /// Every retained entry, newest first (the shutdown dump).
    pub fn dump(&self) -> Vec<SlowEntry> {
        self.recent(usize::MAX)
    }

    /// Entries currently retained.
    pub fn len(&self) -> usize {
        lock(&self.ring).len()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Batches ever logged (retained or evicted).
    pub fn recorded(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log_one(log: &SlowLog, latency_ms: u64) -> bool {
        log.observe(
            "census",
            Mode::Estimate,
            5,
            Duration::from_millis(latency_ms),
            7,
            42,
            "qi0=1;s=0\nqi0=2;s=1\n",
        )
    }

    #[test]
    fn threshold_gates_recording() {
        let log = SlowLog::new(Some(Duration::from_millis(10)), 8);
        assert!(!log_one(&log, 9));
        assert!(log_one(&log, 10));
        assert!(log_one(&log, 11));
        assert_eq!(log.len(), 2);
        let off = SlowLog::new(None, 8);
        assert!(!log_one(&off, 1_000));
        assert!(off.is_empty());
        // Threshold zero records everything (the CI smoke setting).
        let all = SlowLog::new(Some(Duration::ZERO), 8);
        assert!(log_one(&all, 0));
    }

    #[test]
    fn ring_keeps_newest_and_counts_evictions() {
        let log = SlowLog::new(Some(Duration::ZERO), 3);
        for _ in 0..5 {
            log_one(&log, 1);
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.recorded(), 5);
        let recent = log.recent(2);
        assert_eq!(recent.len(), 2);
        assert_eq!(recent[0].seq, 4, "newest first");
        assert_eq!(recent[1].seq, 3);
        assert_eq!(log.dump().len(), 3);
        assert_eq!(log.dump()[2].seq, 2, "seq 0 and 1 evicted");
    }

    #[test]
    fn entries_round_trip_through_json() {
        let log = SlowLog::new(Some(Duration::from_millis(1)), 4);
        log.observe(
            "census \"q\"",
            Mode::Exact,
            3,
            Duration::from_millis(2),
            1,
            99,
            "qi0=1|2;s=0",
        );
        let entry = log.recent(1).remove(0);
        let line = entry.to_json();
        assert!(!line.contains('\n'), "wire format is one line: {line}");
        assert_eq!(SlowEntry::from_json(&line), Ok(entry));
        assert!(SlowEntry::from_json("{}").is_err());
        assert!(SlowEntry::from_json("not json").is_err());
    }

    #[test]
    fn exemplar_is_first_line_truncated() {
        let log = SlowLog::new(Some(Duration::ZERO), 2);
        let long = "x".repeat(1000);
        log.observe(
            "r",
            Mode::Estimate,
            1,
            Duration::ZERO,
            0,
            0,
            &format!("{long}\nsecond"),
        );
        let e = log.recent(1).remove(0);
        assert_eq!(e.query.len(), 256);
        assert!(!e.query.contains("second"));
    }
}
