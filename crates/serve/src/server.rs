//! The accept loop, per-connection protocol handling, admission
//! control, and the monitoring endpoints (stats, metrics, slowlog).

use crate::protocol::{connect_stream, LineEvent, LineReader, Mode, Stream};
use crate::release::ServedRelease;
use crate::slowlog::{SlowEntry, SlowLog};
use anatomy_obs::{render_exposition, ParamValue, RunManifest, WindowConfig, Windows};
use anatomy_pool::Pool;
use anatomy_query::{estimate_anatomy_batch_v2, evaluate_exact_batch_v2, workload_from_text};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::io::{self, Write};
use std::net::TcpListener;
#[cfg(unix)]
use std::os::unix::net::UnixListener;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How a connection thread notices a shutdown while idle.
const IDLE_POLL: Duration = Duration::from_millis(200);

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// `HOST:PORT` (port `0` picks a free one) or `unix:PATH`.
    pub listen: String,
    /// Batches evaluated concurrently before `BUSY` responses.
    pub max_inflight: usize,
    /// Largest accepted batch, in queries.
    pub max_batch: usize,
    /// Batches at or above this wall time land in the slow-query log;
    /// `Some(ZERO)` logs every batch, `None` disables the log.
    pub slowlog_threshold: Option<Duration>,
    /// Slow-query entries retained (a ring; newest win).
    pub slowlog_capacity: usize,
    /// Ring layout for the rolling metric windows fed by the sampler
    /// thread that [`Server::run`] starts.
    pub window: WindowConfig,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            listen: "127.0.0.1:0".to_string(),
            max_inflight: 4,
            max_batch: 65_536,
            slowlog_threshold: Some(Duration::from_millis(100)),
            slowlog_capacity: 128,
            window: WindowConfig::default(),
        }
    }
}

/// What the server did over its lifetime, returned by [`Server::run`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ServeSummary {
    /// Batches answered with `OK`.
    pub batches: u64,
    /// Queries inside those batches.
    pub queries: u64,
    /// Batches refused with `BUSY`.
    pub overloaded: u64,
    /// Requests answered with `ERR`.
    pub errors: u64,
    /// The slow-query log at shutdown, newest first.
    pub slow: Vec<SlowEntry>,
}

/// Observability handles, registered once against the global registry.
struct ServeObs {
    batches: anatomy_obs::Counter,
    queries: anatomy_obs::Counter,
    overloaded: anatomy_obs::Counter,
    errors: anatomy_obs::Counter,
    busy_rejections: anatomy_obs::Counter,
    stats_requests: anatomy_obs::Counter,
    metrics_requests: anatomy_obs::Counter,
    slowlog_entries: anatomy_obs::Counter,
    in_flight: anatomy_obs::Gauge,
    connections_open: anatomy_obs::Gauge,
}

impl ServeObs {
    fn new() -> ServeObs {
        let registry = anatomy_obs::global();
        ServeObs {
            batches: registry.counter("serve.batches"),
            queries: registry.counter("serve.queries"),
            overloaded: registry.counter("serve.overloaded"),
            errors: registry.counter("serve.errors"),
            busy_rejections: registry.counter("serve.busy_rejections"),
            stats_requests: registry.counter("serve.stats_requests"),
            metrics_requests: registry.counter("serve.metrics_requests"),
            slowlog_entries: registry.counter("serve.slowlog_entries"),
            in_flight: registry.gauge("serve.in_flight"),
            connections_open: registry.gauge("serve.connections_open"),
        }
    }
}

/// Decrements `serve.connections_open` when a connection thread exits,
/// however it exits.
struct ConnGuard<'a> {
    obs: &'a ServeObs,
}

impl Drop for ConnGuard<'_> {
    fn drop(&mut self) {
        self.obs.connections_open.add(-1);
    }
}

fn windows_lock(m: &Mutex<Windows>) -> MutexGuard<'_, Windows> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// State shared by the accept loop and every connection thread.
struct Shared {
    releases: HashMap<String, ServedRelease>,
    max_inflight: usize,
    max_batch: usize,
    in_flight: AtomicUsize,
    stop: AtomicBool,
    obs: ServeObs,
    // The summary is tracked separately from `obs` so it is correct
    // even when the embedding process keeps the registry disabled.
    batches: AtomicU64,
    queries: AtomicU64,
    overloaded: AtomicU64,
    errors: AtomicU64,
    /// Ring state the sampler thread feeds and `METRICS` reads.
    windows: Arc<Mutex<Windows>>,
    slowlog: SlowLog,
    /// The immutable portion of every `STATS` manifest — releases and
    /// tuning knobs never change after bind, so they are captured once
    /// here instead of being re-built per request.
    stats_params: Vec<(String, ParamValue)>,
    conn_seq: AtomicU64,
}

impl Shared {
    /// Admission control: claim an evaluation slot, or report how many
    /// were busy. Bounded in-flight work is the overload contract — a
    /// refused batch gets an explicit `BUSY`, never unbounded queueing.
    fn try_admit(self: &Arc<Shared>) -> Result<AdmissionGuard, usize> {
        let mut cur = self.in_flight.load(Ordering::Relaxed);
        loop {
            if cur >= self.max_inflight {
                return Err(cur);
            }
            match self.in_flight.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::Acquire,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.obs.in_flight.add(1);
                    return Ok(AdmissionGuard {
                        shared: Arc::clone(self),
                    });
                }
                Err(now) => cur = now,
            }
        }
    }
}

struct AdmissionGuard {
    shared: Arc<Shared>,
}

impl Drop for AdmissionGuard {
    fn drop(&mut self) {
        self.shared.in_flight.fetch_sub(1, Ordering::Release);
        self.shared.obs.in_flight.add(-1);
    }
}

enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener, String),
}

impl Listener {
    fn accept(&self) -> io::Result<Box<dyn Stream>> {
        match self {
            Listener::Tcp(l) => {
                let (conn, _) = l.accept()?;
                conn.set_nodelay(true)?;
                Ok(Box::new(conn))
            }
            #[cfg(unix)]
            Listener::Unix(l, _) => {
                let (conn, _) = l.accept()?;
                Ok(Box::new(conn))
            }
        }
    }
}

/// A bound, not-yet-running server. [`Server::run`] blocks the calling
/// thread until a `SHUTDOWN` request; [`Server::spawn`] does the same on
/// a background thread and hands back the address.
pub struct Server {
    listener: Listener,
    addr: String,
    shared: Arc<Shared>,
}

impl Server {
    /// Bind the configured address and load `releases`. For unix
    /// sockets a stale socket file from a dead server is removed first.
    pub fn bind(cfg: ServeConfig, releases: Vec<ServedRelease>) -> io::Result<Server> {
        let listener = if let Some(path) = cfg.listen.strip_prefix("unix:") {
            #[cfg(unix)]
            {
                let _ = std::fs::remove_file(path);
                Listener::Unix(UnixListener::bind(path)?, path.to_string())
            }
            #[cfg(not(unix))]
            {
                let _ = path;
                return Err(io::Error::new(
                    io::ErrorKind::Unsupported,
                    "unix sockets are not available on this platform",
                ));
            }
        } else {
            Listener::Tcp(TcpListener::bind(&cfg.listen)?)
        };
        let addr = match &listener {
            Listener::Tcp(l) => l.local_addr()?.to_string(),
            #[cfg(unix)]
            Listener::Unix(_, path) => format!("unix:{path}"),
        };
        let releases: HashMap<String, ServedRelease> = releases
            .into_iter()
            .map(|r| (r.name().to_string(), r))
            .collect();
        let max_inflight = cfg.max_inflight.max(1);
        let max_batch = cfg.max_batch.max(1);
        let stats_params = vec![
            ("releases".to_string(), ParamValue::from(releases.len())),
            ("max_inflight".to_string(), ParamValue::from(max_inflight)),
            ("max_batch".to_string(), ParamValue::from(max_batch)),
        ];
        Ok(Server {
            listener,
            addr,
            shared: Arc::new(Shared {
                releases,
                max_inflight,
                max_batch,
                in_flight: AtomicUsize::new(0),
                stop: AtomicBool::new(false),
                obs: ServeObs::new(),
                batches: AtomicU64::new(0),
                queries: AtomicU64::new(0),
                overloaded: AtomicU64::new(0),
                errors: AtomicU64::new(0),
                windows: Arc::new(Mutex::new(Windows::new(cfg.window.clone()))),
                slowlog: SlowLog::new(cfg.slowlog_threshold, cfg.slowlog_capacity),
                stats_params,
                conn_seq: AtomicU64::new(0),
            }),
        })
    }

    /// The bound address, in the form [`crate::ServeClient::connect`]
    /// accepts: `HOST:PORT` or `unix:PATH`.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Serve until a `SHUTDOWN` request, then join every connection
    /// thread and return the lifetime summary. Enables the global
    /// observability registry so the stats endpoint always has data,
    /// and runs the window sampler thread for the server's lifetime so
    /// `METRICS` answers carry rolling rates and percentiles.
    pub fn run(self) -> io::Result<ServeSummary> {
        anatomy_obs::global().set_enabled(true);
        // The release indexes were built before the registry turned on,
        // so their footprint/container-mix gauges landed in a disabled
        // registry; re-report them now so STATS always carries them.
        for release in self.shared.releases.values() {
            release.index().report_gauges();
        }
        let sampler = anatomy_obs::start_sampler_into(
            anatomy_obs::global(),
            Arc::clone(&self.shared.windows),
        );
        let mut handles: Vec<JoinHandle<()>> = Vec::new();
        loop {
            let conn = match self.listener.accept() {
                Ok(conn) => conn,
                Err(e) => {
                    if self.shared.stop.load(Ordering::Acquire) {
                        break;
                    }
                    if e.kind() == io::ErrorKind::Interrupted {
                        continue;
                    }
                    return Err(e);
                }
            };
            if self.shared.stop.load(Ordering::Acquire) {
                break; // the wake-up connection from the shutdown path
            }
            let shared = Arc::clone(&self.shared);
            let addr = self.addr.clone();
            handles.push(std::thread::spawn(move || {
                if let Err(e) = handle_connection(conn, &shared, &addr) {
                    // Peer went away mid-request; not the server's error.
                    let _ = e;
                }
            }));
            // Reap finished threads so a long-lived server does not
            // accumulate one handle per past connection.
            handles.retain(|h| !h.is_finished());
        }
        for h in handles {
            let _ = h.join();
        }
        // Stop takes one final tick, so work finished just before the
        // SHUTDOWN still lands in a window for any post-mortem scrape.
        sampler.stop(anatomy_obs::global());
        #[cfg(unix)]
        if let Listener::Unix(_, path) = &self.listener {
            let _ = std::fs::remove_file(path);
        }
        Ok(ServeSummary {
            batches: self.shared.batches.load(Ordering::Relaxed),
            queries: self.shared.queries.load(Ordering::Relaxed),
            overloaded: self.shared.overloaded.load(Ordering::Relaxed),
            errors: self.shared.errors.load(Ordering::Relaxed),
            slow: self.shared.slowlog.dump(),
        })
    }

    /// [`Server::run`] on a background thread; returns the address and
    /// the join handle carrying the eventual summary.
    pub fn spawn(self) -> (String, JoinHandle<io::Result<ServeSummary>>) {
        let addr = self.addr.clone();
        (addr, std::thread::spawn(move || self.run()))
    }
}

/// Read a request line, tolerating idle timeouts until `stop` is set.
fn next_request(rd: &mut LineReader, shared: &Shared) -> io::Result<Option<String>> {
    loop {
        match rd.next_line()? {
            LineEvent::Line(l) => return Ok(Some(l)),
            LineEvent::Eof => return Ok(None),
            LineEvent::TimedOut => {
                if shared.stop.load(Ordering::Acquire) {
                    return Ok(None);
                }
            }
        }
    }
}

/// Render the current registry state plus window aggregates in the
/// Prometheus text format — the shared body of `METRICS` and
/// `GET /metrics`.
fn render_metrics(shared: &Shared) -> String {
    let snapshot = anatomy_obs::global().snapshot();
    let aggregates = windows_lock(&shared.windows).aggregates();
    render_exposition(&snapshot, &aggregates)
}

/// The cached-params `STATS` manifest: only the live registry block is
/// re-captured per request; the release/config params were frozen at
/// bind time.
fn stats_manifest(shared: &Shared) -> RunManifest {
    let mut manifest = RunManifest::capture("serve", anatomy_obs::global());
    manifest.params = shared.stats_params.clone();
    manifest
}

fn handle_connection(conn: Box<dyn Stream>, shared: &Arc<Shared>, addr: &str) -> io::Result<()> {
    let conn_id = shared.conn_seq.fetch_add(1, Ordering::Relaxed);
    shared.obs.connections_open.add(1);
    let _open = ConnGuard { obs: &shared.obs };
    conn.set_read_timeout_opt(Some(IDLE_POLL))?;
    let writer = conn.try_clone_stream()?;
    let mut wr = io::BufWriter::with_capacity(1 << 16, writer);
    let mut rd = LineReader::new(conn);
    while let Some(req) = next_request(&mut rd, shared)? {
        let mut parts = req.split_ascii_whitespace();
        match parts.next() {
            Some("PING") => {
                wr.write_all(b"OK 0\n")?;
            }
            Some("RELEASES") => {
                let mut body = String::new();
                for r in shared.releases.values() {
                    let _ = writeln!(
                        body,
                        "{} tuples={} groups={} exact={}",
                        r.name(),
                        r.tables().len(),
                        r.tables().group_count(),
                        r.serves_exact()
                    );
                }
                write!(wr, "OK {}\n{body}", shared.releases.len())?;
            }
            Some("STATS") => {
                shared.obs.stats_requests.incr();
                writeln!(wr, "OK 1\n{}", stats_manifest(shared).to_json_compact())?;
            }
            Some("METRICS") => {
                shared.obs.metrics_requests.incr();
                let body = render_metrics(shared);
                write!(wr, "OK {}\n{body}", body.lines().count())?;
            }
            Some("SLOWLOG") => {
                let n = match parts.next() {
                    None => usize::MAX,
                    Some(t) => match t.parse::<usize>() {
                        Ok(n) if parts.next().is_none() => n,
                        _ => {
                            shared.errors.fetch_add(1, Ordering::Relaxed);
                            shared.obs.errors.incr();
                            writeln!(wr, "ERR malformed SLOWLOG request `{req}`")?;
                            wr.flush()?;
                            continue;
                        }
                    },
                };
                let entries = shared.slowlog.recent(n);
                writeln!(wr, "OK {}", entries.len())?;
                for e in &entries {
                    writeln!(wr, "{}", e.to_json())?;
                }
            }
            // `GET /metrics` convenience on the same listener, so stock
            // scrapers (curl, Prometheus) need no protocol shim. One
            // response per connection, then close — which also makes the
            // unread remainder of the HTTP request headers harmless.
            Some("GET") => {
                shared.obs.metrics_requests.incr();
                let (status, body) = match parts.next() {
                    Some(p) if p == "/metrics" || p.starts_with("/metrics?") => {
                        ("200 OK", render_metrics(shared))
                    }
                    _ => ("404 Not Found", "try /metrics\n".to_string()),
                };
                write!(
                    wr,
                    "HTTP/1.1 {status}\r\nContent-Type: text/plain; version=0.0.4; \
                     charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
                    body.len()
                )?;
                wr.flush()?;
                return Ok(());
            }
            Some("SHUTDOWN") => {
                wr.write_all(b"OK 0\n")?;
                wr.flush()?;
                shared.stop.store(true, Ordering::Release);
                // Wake the accept loop so it observes the stop flag.
                let _ = connect_stream(addr);
                return Ok(());
            }
            Some("BATCH") => {
                if !handle_batch(&req, parts, &mut rd, &mut wr, shared, conn_id)? {
                    wr.flush()?;
                    return Ok(()); // stream out of sync: close it
                }
            }
            _ => {
                shared.errors.fetch_add(1, Ordering::Relaxed);
                shared.obs.errors.incr();
                writeln!(wr, "ERR unknown request `{req}`")?;
            }
        }
        wr.flush()?;
    }
    Ok(())
}

/// Handle one `BATCH name mode count` request. Returns `false` when the
/// connection can no longer be trusted to be in sync (malformed header,
/// oversized batch) and must be closed after the `ERR` goes out.
fn handle_batch(
    req: &str,
    mut parts: std::str::SplitAsciiWhitespace<'_>,
    rd: &mut LineReader,
    wr: &mut impl Write,
    shared: &Arc<Shared>,
    conn_id: u64,
) -> io::Result<bool> {
    let err = |shared: &Shared| {
        shared.errors.fetch_add(1, Ordering::Relaxed);
        shared.obs.errors.incr();
    };
    let (name, mode, count) = match (
        parts.next(),
        parts.next().and_then(Mode::parse),
        parts.next().and_then(|c| c.parse::<usize>().ok()),
    ) {
        (Some(n), Some(m), Some(c)) if parts.next().is_none() => (n.to_string(), m, c),
        _ => {
            err(shared);
            writeln!(wr, "ERR malformed BATCH header `{req}`")?;
            return Ok(false);
        }
    };
    if count > shared.max_batch {
        err(shared);
        writeln!(
            wr,
            "ERR batch of {count} queries exceeds max_batch {}",
            shared.max_batch
        )?;
        return Ok(false);
    }

    // The body is committed by the header: consume all `count` lines
    // before any verdict, so the stream stays in sync even on errors.
    let mut body = String::new();
    for _ in 0..count {
        loop {
            match rd.next_line()? {
                LineEvent::Line(l) => {
                    body.push_str(&l);
                    body.push('\n');
                    break;
                }
                LineEvent::Eof => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "peer closed mid-batch",
                    ))
                }
                LineEvent::TimedOut => {
                    if shared.stop.load(Ordering::Acquire) {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "shutdown during batch body",
                        ));
                    }
                }
            }
        }
    }

    let Some(release) = shared.releases.get(&name) else {
        err(shared);
        writeln!(wr, "ERR unknown release `{name}`")?;
        return Ok(true);
    };
    if mode == Mode::Exact && !release.serves_exact() {
        err(shared);
        writeln!(
            wr,
            "ERR release `{name}` was loaded from its published pair and serves estimate only"
        )?;
        return Ok(true);
    }
    let queries = match workload_from_text(release.parse_md(), &body) {
        Ok(q) => q,
        Err(e) => {
            err(shared);
            writeln!(wr, "ERR bad query: {e}")?;
            return Ok(true);
        }
    };
    if queries.len() != count {
        err(shared);
        writeln!(
            wr,
            "ERR batch body parsed to {} queries, header said {count} (blank lines?)",
            queries.len()
        )?;
        return Ok(true);
    }

    let _admitted = match shared.try_admit() {
        Ok(guard) => guard,
        Err(in_flight) => {
            shared.overloaded.fetch_add(1, Ordering::Relaxed);
            shared.obs.overloaded.incr();
            shared.obs.busy_rejections.incr();
            writeln!(wr, "BUSY {in_flight} {}", shared.max_inflight)?;
            return Ok(true);
        }
    };

    // The span behind the stats endpoint's latency block: one per
    // served batch, covering evaluation and answer formatting. Its
    // journal id doubles as the slow-query log's trace exemplar.
    let started = Instant::now();
    let span = anatomy_obs::global().span("serve.batch");
    let span_id = span.trace_id();
    let mut out = String::with_capacity(8 * count + 16);
    let _ = writeln!(out, "OK {count}");
    match mode {
        Mode::Exact => {
            for v in evaluate_exact_batch_v2(Pool::global(), release.index(), &queries) {
                let _ = writeln!(out, "{v}");
            }
        }
        Mode::Estimate => {
            // f64 Display is shortest-round-trip, so the printed text
            // parses back to bit-identical estimates client-side.
            for v in estimate_anatomy_batch_v2(
                Pool::global(),
                release.index(),
                release.tables(),
                &queries,
            ) {
                let _ = writeln!(out, "{v}");
            }
        }
    }
    drop(span);
    if shared.slowlog.observe(
        &name,
        mode,
        count as u64,
        started.elapsed(),
        conn_id,
        span_id,
        &body,
    ) {
        shared.obs.slowlog_entries.incr();
    }
    wr.write_all(out.as_bytes())?;
    shared.batches.fetch_add(1, Ordering::Relaxed);
    shared.queries.fetch_add(count as u64, Ordering::Relaxed);
    shared.obs.batches.incr();
    shared.obs.queries.add(count as u64);
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cached_stats_params_pin_the_with_param_chain_json() {
        // The params block is frozen at bind; a STATS response must stay
        // byte-identical to the old per-request `with_param` chain.
        let server = Server::bind(
            ServeConfig {
                max_inflight: 3,
                max_batch: 77,
                ..ServeConfig::default()
            },
            vec![],
        )
        .unwrap();
        let manifest = stats_manifest(&server.shared);
        let chained =
            RunManifest::from_snapshot(&manifest.name, manifest.enabled, manifest.snapshot.clone())
                .with_param("releases", 0u64)
                .with_param("max_inflight", 3u64)
                .with_param("max_batch", 77u64);
        assert_eq!(manifest.to_json_compact(), chained.to_json_compact());
    }
}
