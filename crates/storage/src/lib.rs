//! # anatomy-storage
//!
//! Simulated paged storage with *logical I/O accounting*.
//!
//! The Anatomy paper's efficiency claims are stated in logical I/Os:
//! `Anatomize` runs in `O(n/b)` I/Os with `O(λ)` memory (Theorem 3), and the
//! experiments of Section 6.2 count page I/Os with a 4096-byte page size and
//! a memory capacity of 50 pages (Figures 8–9). Reproducing those figures
//! requires a storage layer that *counts pages*, not a physical disk — the
//! paper itself reports counts, not seconds.
//!
//! This crate provides:
//!
//! * [`IoCounter`] — thread-safe read/write page counters shared by every
//!   component of one experiment;
//! * [`FixedCodec`] / [`U32RowCodec`] — fixed-size record serialization, so
//!   a page holds `⌊page_size / record_len⌋` records exactly as in the
//!   paper's `b` records-per-page arithmetic;
//! * [`SimFile`] with [`SeqWriter`] / [`SeqReader`] — sequential record
//!   files materialized as real byte pages, charging one write per emitted
//!   page and one read per consumed page;
//! * [`BufferPool`] — a fixed budget of in-memory pages with RAII
//!   [`PageLease`]s, used by the external algorithms to *prove* they respect
//!   the 50-page memory limit rather than merely claim it;
//! * [`hash_partition`] — external hash partitioning (the first phase of
//!   `Anatomize`), with recursive multi-pass splitting when the fan-out
//!   exceeds the buffer budget.
//!
//! Every stored page carries a [`PageHeader`] (magic, format version,
//! record count, CRC-32) verified on read, and the [`fault`] module can
//! inject short reads/writes, bit flips, and ENOSPC on a seeded schedule
//! so error paths are tested, not assumed.

pub mod buffer;
pub mod counter;
pub mod error;
pub mod fault;
pub mod file;
pub mod hash_partition;
pub mod page;
pub mod record;

pub use buffer::{BufferPool, PageLease};
pub use counter::{IoCounter, IoStats};
pub use error::StorageError;
pub use fault::{FaultConfig, FaultKind, FaultScope};
pub use file::{SeqReader, SeqWriter, SimFile};
pub use hash_partition::hash_partition;
pub use page::{
    crc32, PageConfig, PageHeader, DEFAULT_PAGE_SIZE, PAGE_FORMAT_VERSION, PAGE_MAGIC,
    PAPER_MEMORY_PAGES,
};
pub use record::{FixedCodec, U32RowCodec};

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, StorageError>;
