//! Seeded fault injection for the simulated file layer.
//!
//! A [`FaultConfig`] is a schedule of physical faults keyed by operation
//! index: "truncate the 3rd page write", "flip a bit in the 0th page
//! read", "return ENOSPC on the 5th write". Installing it with
//! [`FaultScope::install`] arms the schedule for the current thread;
//! every page flushed by [`SeqWriter`](crate::SeqWriter) and every page
//! loaded by [`SeqReader`](crate::SeqReader) on that thread then passes
//! through the schedule until the scope is dropped.
//!
//! The state is thread-local on purpose: `anatomize_external` creates
//! its scratch [`SimFile`](crate::SimFile)s internally, so callers
//! cannot wrap them directly — but arming the thread lets a test inject
//! faults into the middle of the pipeline while parallel tests on other
//! threads stay clean.
//!
//! ```
//! use anatomy_storage::fault::{FaultConfig, FaultScope};
//! use anatomy_storage::{
//!     BufferPool, IoCounter, PageConfig, SeqWriter, SimFile, StorageError, U32RowCodec,
//! };
//!
//! let _scope = FaultScope::install(FaultConfig::new().disk_full(0));
//! let mut file = SimFile::new();
//! let pool = BufferPool::unbounded();
//! let mut w = SeqWriter::open(
//!     &mut file,
//!     U32RowCodec::new(1),
//!     PageConfig::with_page_size(8),
//!     &pool,
//!     IoCounter::new(),
//! )
//! .unwrap();
//! w.push(&vec![1]).unwrap();
//! w.push(&vec![2]).unwrap();
//! // The first page flush hits the scheduled ENOSPC.
//! assert!(matches!(w.push(&vec![3]), Err(StorageError::DiskFull { .. })));
//! ```

use crate::error::StorageError;
use anatomy_obs::EventKind;
use std::cell::{Cell, RefCell};
use std::marker::PhantomData;

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Keep only the first `keep` bytes of a written page (a torn/short
    /// write that the device acknowledged anyway).
    ShortWrite {
        /// Bytes that survive.
        keep: usize,
    },
    /// Flip one bit of a written page after its header was computed.
    BitFlipWrite {
        /// Bit position; reduced modulo the page's bit length.
        bit: u64,
    },
    /// Reject a page write outright (ENOSPC).
    DiskFull,
    /// Deliver only the first `keep` bytes of a read page.
    ShortRead {
        /// Bytes that survive.
        keep: usize,
    },
    /// Flip one bit of a page as it is read.
    BitFlipRead {
        /// Bit position; reduced modulo the page's bit length.
        bit: u64,
    },
}

impl FaultKind {
    /// Whether this fault fires on the write path.
    pub fn is_write(&self) -> bool {
        matches!(
            self,
            FaultKind::ShortWrite { .. } | FaultKind::BitFlipWrite { .. } | FaultKind::DiskFull
        )
    }
}

/// A schedule of faults, keyed by 0-based page-operation index.
///
/// Write faults count page *writes* (flushes) since the scope was
/// installed, across all files on the thread; read faults count page
/// loads the same way. Operations with no scheduled fault proceed
/// untouched.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultConfig {
    on_write: Vec<(u64, FaultKind)>,
    on_read: Vec<(u64, FaultKind)>,
}

impl FaultConfig {
    /// An empty schedule (no faults).
    pub fn new() -> Self {
        FaultConfig::default()
    }

    /// Truncate the `op`-th page write to its first `keep` bytes.
    pub fn short_write(mut self, op: u64, keep: usize) -> Self {
        self.on_write.push((op, FaultKind::ShortWrite { keep }));
        self
    }

    /// Flip bit `bit` (mod page length) of the `op`-th page write.
    pub fn bit_flip_write(mut self, op: u64, bit: u64) -> Self {
        self.on_write.push((op, FaultKind::BitFlipWrite { bit }));
        self
    }

    /// Fail the `op`-th page write with [`StorageError::DiskFull`].
    pub fn disk_full(mut self, op: u64) -> Self {
        self.on_write.push((op, FaultKind::DiskFull));
        self
    }

    /// Truncate the `op`-th page read to its first `keep` bytes.
    pub fn short_read(mut self, op: u64, keep: usize) -> Self {
        self.on_read.push((op, FaultKind::ShortRead { keep }));
        self
    }

    /// Flip bit `bit` (mod page length) of the `op`-th page read.
    pub fn bit_flip_read(mut self, op: u64, bit: u64) -> Self {
        self.on_read.push((op, FaultKind::BitFlipRead { bit }));
        self
    }

    /// Schedule `kind` at operation `op` on its natural path.
    pub fn with_fault(mut self, op: u64, kind: FaultKind) -> Self {
        if kind.is_write() {
            self.on_write.push((op, kind));
        } else {
            self.on_read.push((op, kind));
        }
        self
    }

    /// A schedule of one pseudo-random fault derived from `seed` via
    /// splitmix64 (no dependency on any RNG crate). Deterministic:
    /// equal seeds give equal schedules.
    pub fn seeded(seed: u64) -> Self {
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let op = next() % 16;
        let kind = match next() % 5 {
            0 => FaultKind::ShortWrite {
                keep: (next() % 8) as usize,
            },
            1 => FaultKind::BitFlipWrite { bit: next() % 512 },
            2 => FaultKind::DiskFull,
            3 => FaultKind::ShortRead {
                keep: (next() % 8) as usize,
            },
            _ => FaultKind::BitFlipRead { bit: next() % 512 },
        };
        FaultConfig::new().with_fault(op, kind)
    }

    /// All scheduled faults, for display/debugging.
    pub fn faults(&self) -> impl Iterator<Item = (u64, FaultKind)> + '_ {
        self.on_write.iter().chain(self.on_read.iter()).copied()
    }
}

struct FaultState {
    cfg: FaultConfig,
    writes: u64,
    reads: u64,
}

thread_local! {
    /// The stack of armed scopes on this thread; the *top* entry is the
    /// authoritative schedule (inner scopes shadow outer ones).
    static STACK: RefCell<Vec<FaultState>> = const { RefCell::new(Vec::new()) };
    /// (writes, reads) on this thread while *no* fault scope is armed,
    /// so trace events always carry a page-operation index. With a
    /// scope armed the scope's own counters are authoritative — they
    /// are the indices a [`FaultConfig`] schedule keys on, so a trace
    /// pinpoints the exact op a fault fired at.
    static FREE_OPS: Cell<(u64, u64)> = const { Cell::new((0, 0)) };
}

/// RAII guard arming a [`FaultConfig`] for the current thread.
///
/// Dropping the scope restores whatever schedule (usually none) was
/// active before, so scopes nest. Disarming is unconditional: the guard
/// remembers the stack depth it was installed at and truncates back to
/// it on drop, so a panic unwinding through the guarded code — or a
/// guard dropped out of order relative to a later one — can never leak
/// an armed schedule into unrelated code sharing the thread. The guard
/// is `!Send`: it must be dropped on the thread it armed.
pub struct FaultScope {
    depth: usize,
    _not_send: PhantomData<*const ()>,
}

impl FaultScope {
    /// Arm `cfg` on this thread until the returned guard is dropped.
    pub fn install(cfg: FaultConfig) -> FaultScope {
        let depth = STACK.with(|s| {
            let mut s = s.borrow_mut();
            s.push(FaultState {
                cfg,
                writes: 0,
                reads: 0,
            });
            s.len() - 1
        });
        FaultScope {
            depth,
            _not_send: PhantomData,
        }
    }
}

impl Drop for FaultScope {
    fn drop(&mut self) {
        // Truncating (rather than popping) also evicts any scope that
        // was installed above this one and outlived its own guard, so
        // out-of-order drops cannot resurrect a stale schedule.
        // `try_with`: drops during thread teardown find the TLS already
        // destroyed; disarming is then moot and must not panic/abort.
        let _ = STACK.try_with(|s| s.borrow_mut().truncate(self.depth));
    }
}

fn flip(payload: &mut [u8], bit: u64) {
    if payload.is_empty() {
        return;
    }
    let pos = bit % (payload.len() as u64 * 8);
    payload[(pos / 8) as usize] ^= 1 << (pos % 8);
}

/// Write-path hook: called by `SeqWriter` with the payload it is about
/// to store, after the page header has been computed. May truncate or
/// corrupt `payload` in place, or veto the write entirely. Journals a
/// `PageWrite` trace event (plus `FaultFired` when a schedule entry
/// matched — emitted even when the fault vetoes the write, so the
/// trace records exactly which op died).
pub(crate) fn on_write(payload: &mut Vec<u8>, page: usize) -> Result<(), StorageError> {
    let (op, fired, verdict) = STACK.with(|s| {
        let mut s = s.borrow_mut();
        match s.last_mut() {
            None => {
                let op = FREE_OPS.with(|c| {
                    let (w, r) = c.get();
                    c.set((w + 1, r));
                    w
                });
                (op, false, Ok(()))
            }
            Some(state) => {
                let op = state.writes;
                state.writes += 1;
                let mut fired = false;
                let mut verdict = Ok(());
                for &(at, kind) in &state.cfg.on_write {
                    if at != op {
                        continue;
                    }
                    match kind {
                        FaultKind::ShortWrite { keep } => {
                            payload.truncate(keep);
                            fired = true;
                        }
                        FaultKind::BitFlipWrite { bit } => {
                            flip(payload, bit);
                            fired = true;
                        }
                        FaultKind::DiskFull => {
                            fired = true;
                            verdict = Err(StorageError::DiskFull { page });
                            break;
                        }
                        _ => {}
                    }
                }
                (op, fired, verdict)
            }
        }
    });
    let t = anatomy_obs::tracer();
    if t.enabled() {
        t.emit(EventKind::PageWrite {
            op,
            page: page as u64,
        });
        if fired {
            t.emit(EventKind::FaultFired { op, write: true });
        }
    }
    verdict
}

/// Read-path hook: called by `SeqReader` with its private copy of a
/// page's payload, before header verification. May truncate or corrupt
/// the copy in place (never the stored page). Journals a `PageRead`
/// trace event (plus `FaultFired` when a schedule entry matched).
pub(crate) fn on_read(payload: &mut Vec<u8>, page: usize) {
    let (op, fired) = STACK.with(|s| {
        let mut s = s.borrow_mut();
        match s.last_mut() {
            None => {
                let op = FREE_OPS.with(|c| {
                    let (w, r) = c.get();
                    c.set((w, r + 1));
                    r
                });
                (op, false)
            }
            Some(state) => {
                let op = state.reads;
                state.reads += 1;
                let mut fired = false;
                for &(at, kind) in &state.cfg.on_read {
                    if at != op {
                        continue;
                    }
                    match kind {
                        FaultKind::ShortRead { keep } => {
                            payload.truncate(keep);
                            fired = true;
                        }
                        FaultKind::BitFlipRead { bit } => {
                            flip(payload, bit);
                            fired = true;
                        }
                        _ => {}
                    }
                }
                (op, fired)
            }
        }
    });
    let t = anatomy_obs::tracer();
    if t.enabled() {
        t.emit(EventKind::PageRead {
            op,
            page: page as u64,
        });
        if fired {
            t.emit(EventKind::FaultFired { op, write: false });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scopes_nest_and_restore() {
        assert!(on_write(&mut vec![0u8; 4], 0).is_ok());
        let outer = FaultScope::install(FaultConfig::new().disk_full(0));
        {
            let _inner = FaultScope::install(FaultConfig::new());
            // Inner scope has no faults; the outer schedule is shadowed.
            assert!(on_write(&mut vec![0u8; 4], 0).is_ok());
        }
        // Outer schedule restored, its counter untouched by the inner ops.
        assert!(matches!(
            on_write(&mut vec![0u8; 4], 3),
            Err(StorageError::DiskFull { page: 3 })
        ));
        drop(outer);
        assert!(on_write(&mut vec![0u8; 4], 0).is_ok());
    }

    #[test]
    fn faults_fire_at_their_op_index_only() {
        let _scope = FaultScope::install(
            FaultConfig::new()
                .short_write(1, 2)
                .bit_flip_read(0, 3)
                .short_read(2, 0),
        );
        let mut w0 = vec![0xAAu8; 4];
        on_write(&mut w0, 0).unwrap();
        assert_eq!(w0.len(), 4); // untouched
        let mut w1 = vec![0xAAu8; 4];
        on_write(&mut w1, 1).unwrap();
        assert_eq!(w1, vec![0xAA, 0xAA]); // truncated

        let mut r0 = vec![0u8; 4];
        on_read(&mut r0, 0);
        assert_eq!(r0[0], 1 << 3); // bit 3 flipped
        let mut r1 = vec![0u8; 4];
        on_read(&mut r1, 1);
        assert_eq!(r1, vec![0u8; 4]); // untouched
        let mut r2 = vec![0u8; 4];
        on_read(&mut r2, 2);
        assert!(r2.is_empty()); // short read to zero bytes
    }

    #[test]
    fn panicking_scope_disarms_its_schedule() {
        // A panic unwinding through the guarded code must still disarm
        // the schedule: the next operation on this thread is fault-free.
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _scope = FaultScope::install(FaultConfig::new().disk_full(0));
            panic!("test failure inside a fault scope");
        }));
        assert!(unwound.is_err());
        assert!(on_write(&mut vec![0u8; 4], 0).is_ok());
    }

    #[test]
    fn panic_with_nested_scopes_disarms_all_of_them() {
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _outer = FaultScope::install(FaultConfig::new().disk_full(0));
            let _inner = FaultScope::install(FaultConfig::new().bit_flip_read(0, 1));
            panic!("boom with two scopes armed");
        }));
        assert!(unwound.is_err());
        assert!(on_write(&mut vec![0u8; 4], 0).is_ok());
        let mut r = vec![0u8; 4];
        on_read(&mut r, 0);
        assert_eq!(r, vec![0u8; 4]); // no flip: inner scope gone too
    }

    #[test]
    fn out_of_order_drops_cannot_leak_a_schedule() {
        // Guards dropped in installation order (not reverse order):
        // dropping `a` must evict `b`'s shadowing entry as well, and
        // dropping `b` afterwards must not resurrect `a`'s armed
        // schedule. (The pre-stack implementation restored `b.prev`,
        // i.e. `a`'s DiskFull schedule, here.)
        let a = FaultScope::install(FaultConfig::new().disk_full(0));
        let b = FaultScope::install(FaultConfig::new());
        drop(a);
        drop(b);
        assert!(on_write(&mut vec![0u8; 4], 0).is_ok());
    }

    #[test]
    fn seeded_schedules_are_deterministic() {
        assert_eq!(FaultConfig::seeded(42), FaultConfig::seeded(42));
        // A handful of seeds should not all collapse to the same fault.
        let distinct: std::collections::HashSet<String> = (0..16u64)
            .map(|s| format!("{:?}", FaultConfig::seeded(s)))
            .collect();
        assert!(distinct.len() > 3);
    }

    #[test]
    fn bit_flip_wraps_and_ignores_empty() {
        let mut p = vec![0u8; 2];
        flip(&mut p, 17); // 17 mod 16 = 1
        assert_eq!(p, vec![0b10, 0]);
        let mut empty: Vec<u8> = vec![];
        flip(&mut empty, 5);
        assert!(empty.is_empty());
    }
}
