//! Sequential record files over simulated pages.
//!
//! A [`SimFile`] is a sequence of byte pages, each holding at most
//! `page_size` payload bytes of fixed-size records back to back, plus an
//! out-of-band [`PageHeader`] (magic, format version, record count,
//! CRC-32). [`SeqWriter`] charges one page write each time an output
//! buffer fills (plus one for the final partial page); [`SeqReader`]
//! charges one page read each time it crosses into a new page, and
//! verifies each page's header before yielding records from it. These
//! are exactly the sequential-scan semantics assumed by Theorem 3's
//! `O(n/b)` analysis — the header lives outside the payload, so the
//! per-page record capacity `b` (and every I/O count built on it) is
//! identical to the unchecked layout.

use crate::buffer::{BufferPool, PageLease};
use crate::counter::IoCounter;
use crate::error::StorageError;
use crate::fault;
use crate::page::{PageConfig, PageHeader};
use crate::record::FixedCodec;

/// One stored page: integrity header plus payload bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Page {
    header: PageHeader,
    payload: Box<[u8]>,
}

/// An in-memory simulated file: a vector of checksummed byte pages.
///
/// ```
/// use anatomy_storage::{
///     BufferPool, IoCounter, PageConfig, SeqReader, SeqWriter, SimFile, U32RowCodec,
/// };
///
/// let cfg = PageConfig::paper(); // 4096-byte pages
/// let pool = BufferPool::paper(); // 50-page memory budget
/// let counter = IoCounter::new();
/// let codec = U32RowCodec::new(3);
///
/// let mut file = SimFile::new();
/// let mut w = SeqWriter::open(&mut file, codec, cfg, &pool, counter.clone())?;
/// for i in 0..1000u32 {
///     w.push(&vec![i, i * 2, i * 3])?;
/// }
/// w.finish()?;
/// // 341 twelve-byte records per 4096-byte page -> 3 pages written.
/// assert_eq!(counter.stats().page_writes, 3);
///
/// let r = SeqReader::open(&file, codec, &pool, counter.clone())?;
/// assert_eq!(r.count(), 1000);
/// assert_eq!(counter.stats().page_reads, 3);
/// # Ok::<(), anatomy_storage::StorageError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimFile {
    pages: Vec<Page>,
    record_count: usize,
}

impl SimFile {
    /// A new empty file.
    pub fn new() -> Self {
        SimFile::default()
    }

    /// Number of pages on "disk".
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Number of records stored.
    pub fn record_count(&self) -> usize {
        self.record_count
    }

    /// Whether the file holds no records.
    pub fn is_empty(&self) -> bool {
        self.record_count == 0
    }

    /// Total payload bytes stored (sum of used page bytes, headers
    /// excluded).
    pub fn byte_len(&self) -> usize {
        self.pages.iter().map(|p| p.payload.len()).sum()
    }
}

/// Sequential writer that packs fixed-size records into pages.
///
/// Holds one buffer page leased from the pool for the duration of the
/// write. Each flushed page gets a [`PageHeader`] computed over the
/// payload the writer intends to store, so later readers can prove the
/// bytes survived intact. [`SeqWriter::push`] and [`SeqWriter::finish`]
/// are fallible — the simulated device can reject a write
/// ([`StorageError::DiskFull`] under fault injection) — and dropping an
/// unfinished writer flushes best-effort, ignoring errors; pipelines
/// that care call `finish()` explicitly.
pub struct SeqWriter<'a, C: FixedCodec> {
    codec: C,
    cfg: PageConfig,
    counter: IoCounter,
    file: &'a mut SimFile,
    buf: Vec<u8>,
    buf_records: u32,
    write_ns: anatomy_obs::Histogram,
    _lease: PageLease,
}

impl<'a, C: FixedCodec> SeqWriter<'a, C> {
    /// Open a writer appending to `file`, leasing one buffer page from
    /// `pool`. Errors with [`StorageError::RecordTooLarge`] when no
    /// record of this codec fits a page.
    pub fn open(
        file: &'a mut SimFile,
        codec: C,
        cfg: PageConfig,
        pool: &BufferPool,
        counter: IoCounter,
    ) -> Result<Self, StorageError> {
        Self::open_buffered(file, codec, cfg, pool, counter, 1)
    }

    /// Open a writer holding `buffers` leased pages instead of one.
    ///
    /// The extra pages model double-buffered output: with two buffers the
    /// device can drain page `k` while the writer fills `k + 1`, so the
    /// sharded pipeline's QIT/ST emitters lease two pages each and the
    /// budget accounting charges what the overlap actually costs. Record
    /// layout, page contents and the I/O bill are identical to
    /// [`SeqWriter::open`] — only the lease size differs.
    pub fn open_buffered(
        file: &'a mut SimFile,
        codec: C,
        cfg: PageConfig,
        pool: &BufferPool,
        counter: IoCounter,
        buffers: usize,
    ) -> Result<Self, StorageError> {
        if buffers == 0 {
            return Err(StorageError::InvalidArgument(
                "writer needs at least one buffer page".into(),
            ));
        }
        cfg.records_per_page(codec.record_len())?;
        let lease = pool.try_lease(buffers)?;
        Ok(SeqWriter {
            codec,
            cfg,
            counter,
            file,
            buf: Vec::with_capacity(cfg.page_size),
            buf_records: 0,
            write_ns: anatomy_obs::global().histogram("storage.page_write_ns"),
            _lease: lease,
        })
    }

    /// Append one record, flushing the buffered page first if the record
    /// would not fit.
    pub fn push(&mut self, record: &C::Record) -> Result<(), StorageError> {
        if self.buf.len() + self.codec.record_len() > self.cfg.page_size {
            self.flush_page()?;
        }
        self.codec.encode(record, &mut self.buf);
        self.buf_records += 1;
        self.file.record_count += 1;
        Ok(())
    }

    fn flush_page(&mut self) -> Result<(), StorageError> {
        if self.buf.is_empty() {
            return Ok(());
        }
        let mut payload = std::mem::replace(&mut self.buf, Vec::with_capacity(self.cfg.page_size));
        let records = std::mem::take(&mut self.buf_records);
        // The header describes the payload the writer *meant* to store;
        // anything the (possibly faulty) device does to the bytes after
        // this point is caught at read time.
        let header = PageHeader::for_payload(&payload, records);
        let page_idx = self.file.pages.len();
        // Clock reads only while the registry records (latency is
        // telemetry; the exact IoCounter stays authoritative either way).
        let t0 = anatomy_obs::global()
            .enabled()
            .then(std::time::Instant::now);
        fault::on_write(&mut payload, page_idx)?;
        self.file.pages.push(Page {
            header,
            payload: payload.into_boxed_slice(),
        });
        self.counter.add_writes(1);
        if let Some(t0) = t0 {
            self.write_ns
                .record(t0.elapsed().as_nanos().min(u64::MAX as u128) as u64);
        }
        Ok(())
    }

    /// Flush the final partial page and release the buffer.
    pub fn finish(mut self) -> Result<(), StorageError> {
        self.flush_page()
        // Drop runs next, but the buffer is now empty (flush_page takes
        // it even on error), so its flush is a no-op either way.
    }
}

impl<C: FixedCodec> Drop for SeqWriter<'_, C> {
    fn drop(&mut self) {
        let _ = self.flush_page();
    }
}

/// Sequential reader over a [`SimFile`].
///
/// Holds one buffer page leased from the pool. Implements `Iterator`,
/// yielding decoded records; a page read is charged lazily when the
/// cursor first touches each page. On first touch the payload is copied
/// into the reader's buffer and its header is verified (magic, format
/// version, length, checksum), so damaged pages surface as one typed
/// [`StorageError`] instead of garbage records. The reader yields
/// exactly [`SimFile::record_count`] records or an error: a file whose
/// pages end early produces [`StorageError::Truncated`]. After the first
/// error the iterator is fused and returns `None`.
pub struct SeqReader<'a, C: FixedCodec> {
    codec: C,
    counter: IoCounter,
    file: &'a SimFile,
    page_idx: usize,
    offset: usize,
    buf: Vec<u8>,
    loaded: bool,
    yielded: usize,
    failed: bool,
    prefetch: usize,
    queue: std::collections::VecDeque<(usize, Result<Vec<u8>, StorageError>)>,
    read_ns: anatomy_obs::Histogram,
    _lease: PageLease,
}

impl<'a, C: FixedCodec> SeqReader<'a, C> {
    /// Open a reader over `file`, leasing one buffer page from `pool`.
    pub fn open(
        file: &'a SimFile,
        codec: C,
        pool: &BufferPool,
        counter: IoCounter,
    ) -> Result<Self, StorageError> {
        Self::open_with_prefetch(file, codec, pool, counter, 1)
    }

    /// Open a reader that prefetches up to `depth` pages per device trip,
    /// leasing `depth` buffer pages from `pool`.
    ///
    /// A sequential scan touches pages strictly in order, so fetching the
    /// next `depth` pages in one batch models the overlapped read-ahead a
    /// real device would do. Records, error ordering and the page-read
    /// bill are identical to [`SeqReader::open`]; prefetched pages are
    /// charged when the batch is fetched rather than one at a time, and
    /// each page's header is still verified before any of its records are
    /// yielded. `depth == 1` is exactly the unbatched reader.
    pub fn open_with_prefetch(
        file: &'a SimFile,
        codec: C,
        pool: &BufferPool,
        counter: IoCounter,
        depth: usize,
    ) -> Result<Self, StorageError> {
        if depth == 0 {
            return Err(StorageError::InvalidArgument(
                "reader needs a prefetch depth of at least one page".into(),
            ));
        }
        let lease = pool.try_lease(depth)?;
        Ok(SeqReader {
            codec,
            counter,
            file,
            page_idx: 0,
            offset: 0,
            buf: Vec::new(),
            loaded: false,
            yielded: 0,
            failed: false,
            prefetch: depth,
            queue: std::collections::VecDeque::new(),
            read_ns: anatomy_obs::global().histogram("storage.page_read_ns"),
            _lease: lease,
        })
    }

    fn fail(&mut self, e: StorageError) -> Option<Result<C::Record, StorageError>> {
        self.failed = true;
        Some(Err(e))
    }

    /// Fetch one batch of up to `prefetch` pages starting at `from`:
    /// charge the reads, copy each payload (read faults apply to the
    /// copy, never the stored bytes) and verify its header. Results are
    /// queued in page order so consumption surfaces errors exactly where
    /// an unbatched reader would.
    fn fetch_batch(&mut self, from: usize) {
        let until = (from + self.prefetch).min(self.file.pages.len());
        for idx in from..until {
            let page = &self.file.pages[idx];
            self.counter.add_reads(1);
            let t0 = anatomy_obs::global()
                .enabled()
                .then(std::time::Instant::now);
            let mut buf = page.payload.to_vec();
            fault::on_read(&mut buf, idx);
            let verified = page.header.verify(&buf, self.codec.record_len(), idx);
            if let Some(t0) = t0 {
                self.read_ns
                    .record(t0.elapsed().as_nanos().min(u64::MAX as u128) as u64);
            }
            self.queue.push_back((idx, verified.map(|()| buf)));
        }
    }
}

impl<C: FixedCodec> Iterator for SeqReader<'_, C> {
    type Item = Result<C::Record, StorageError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        loop {
            if !self.loaded {
                if self.queue.is_empty() {
                    self.fetch_batch(self.page_idx);
                }
                let Some((idx, loaded)) = self.queue.pop_front() else {
                    // End of pages: the file's own metadata says how many
                    // records there should have been.
                    if self.yielded < self.file.record_count {
                        let (expected, found, page) =
                            (self.file.record_count, self.yielded, self.page_idx);
                        return self.fail(StorageError::Truncated {
                            page,
                            expected,
                            found,
                        });
                    }
                    return None;
                };
                debug_assert_eq!(idx, self.page_idx);
                match loaded {
                    Ok(buf) => {
                        self.buf = buf;
                        self.offset = 0;
                        self.loaded = true;
                    }
                    Err(e) => return self.fail(e),
                }
            }
            if self.offset + self.codec.record_len() <= self.buf.len() {
                let mut slice = &self.buf[self.offset..];
                let rec = self.codec.decode(&mut slice);
                self.offset += self.codec.record_len();
                self.yielded += 1;
                return Some(rec);
            }
            // move to next page
            self.page_idx += 1;
            self.loaded = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultConfig, FaultScope};
    use crate::record::U32RowCodec;

    fn setup() -> (PageConfig, BufferPool, IoCounter) {
        // Tiny pages: 3 records of arity 2 (8 bytes each) per 25-byte page.
        (
            PageConfig::with_page_size(25),
            BufferPool::new(8),
            IoCounter::new(),
        )
    }

    fn write_ten(cfg: PageConfig, pool: &BufferPool, counter: &IoCounter) -> SimFile {
        let mut file = SimFile::new();
        let codec = U32RowCodec::new(2);
        let mut w = SeqWriter::open(&mut file, codec, cfg, pool, counter.clone()).unwrap();
        for i in 0..10u32 {
            w.push(&vec![i, i * 10]).unwrap();
        }
        w.finish().unwrap();
        file
    }

    #[test]
    fn write_read_round_trip() {
        let (cfg, pool, counter) = setup();
        let file = write_ten(cfg, &pool, &counter);
        let codec = U32RowCodec::new(2);

        assert_eq!(file.record_count(), 10);
        // 3 records per page -> ceil(10/3) = 4 pages
        assert_eq!(file.page_count(), 4);
        assert_eq!(counter.stats().page_writes, 4);

        let r = SeqReader::open(&file, codec, &pool, counter.clone()).unwrap();
        let rows: Vec<Vec<u32>> = r.map(|x| x.unwrap()).collect();
        assert_eq!(rows.len(), 10);
        assert_eq!(rows[7], vec![7, 70]);
        assert_eq!(counter.stats().page_reads, 4);
    }

    #[test]
    fn io_matches_page_math() {
        let cfg = PageConfig::with_page_size(4096);
        let pool = BufferPool::unbounded();
        let counter = IoCounter::new();
        let codec = U32RowCodec::new(8); // 32 bytes -> 128 per page
        let mut file = SimFile::new();
        let mut w = SeqWriter::open(&mut file, codec, cfg, &pool, counter.clone()).unwrap();
        let n = 1000usize;
        for i in 0..n {
            w.push(&vec![i as u32; 8]).unwrap();
        }
        w.finish().unwrap();
        let expected_pages = cfg.pages_for(n, codec.record_len()).unwrap();
        assert_eq!(expected_pages, 8); // ceil(1000/128)
        assert_eq!(file.page_count(), expected_pages);
        assert_eq!(counter.stats().page_writes, expected_pages as u64);
    }

    #[test]
    fn empty_file_costs_nothing() {
        let (cfg, pool, counter) = setup();
        let mut file = SimFile::new();
        let codec = U32RowCodec::new(2);
        let w = SeqWriter::open(&mut file, codec, cfg, &pool, counter.clone()).unwrap();
        w.finish().unwrap();
        assert!(file.is_empty());
        assert_eq!(file.page_count(), 0);

        let mut r = SeqReader::open(&file, codec, &pool, counter.clone()).unwrap();
        assert!(r.next().is_none());
        assert_eq!(counter.stats().total(), 0);
    }

    #[test]
    fn writer_and_reader_hold_leases() {
        let (cfg, pool, counter) = setup();
        let mut file = SimFile::new();
        let codec = U32RowCodec::new(2);
        {
            let _w = SeqWriter::open(&mut file, codec, cfg, &pool, counter.clone()).unwrap();
            assert_eq!(pool.in_use(), 1);
        }
        assert_eq!(pool.in_use(), 0);
        {
            let _r = SeqReader::open(&file, codec, &pool, counter.clone()).unwrap();
            assert_eq!(pool.in_use(), 1);
        }
        assert_eq!(pool.in_use(), 0);
    }

    #[test]
    fn pool_exhaustion_blocks_open() {
        let (cfg, _, counter) = setup();
        let pool = BufferPool::new(1);
        let mut file = SimFile::new();
        let codec = U32RowCodec::new(2);
        let _w = SeqWriter::open(&mut file, codec, cfg, &pool, counter.clone()).unwrap();
        let file2 = SimFile::new();
        assert!(matches!(
            SeqReader::open(&file2, codec, &pool, counter),
            Err(StorageError::PoolExhausted { .. })
        ));
    }

    #[test]
    fn oversized_record_rejected() {
        let cfg = PageConfig::with_page_size(4);
        let pool = BufferPool::unbounded();
        let counter = IoCounter::new();
        let mut file = SimFile::new();
        assert!(matches!(
            SeqWriter::open(&mut file, U32RowCodec::new(2), cfg, &pool, counter),
            Err(StorageError::RecordTooLarge {
                record_len: 8,
                page_size: 4
            })
        ));
    }

    #[test]
    fn prefetch_reader_matches_unbatched() {
        let (cfg, pool, counter) = setup();
        let file = write_ten(cfg, &pool, &counter); // 4 pages
        let codec = U32RowCodec::new(2);
        let plain: Vec<Vec<u32>> = SeqReader::open(&file, codec, &pool, counter.clone())
            .unwrap()
            .map(|x| x.unwrap())
            .collect();
        for depth in 1..=6 {
            let before = counter.stats().page_reads;
            let r =
                SeqReader::open_with_prefetch(&file, codec, &pool, counter.clone(), depth).unwrap();
            let rows: Vec<Vec<u32>> = r.map(|x| x.unwrap()).collect();
            assert_eq!(rows, plain, "depth={depth}");
            // Same bill: every page is read exactly once.
            assert_eq!(counter.stats().page_reads - before, 4, "depth={depth}");
        }
    }

    #[test]
    fn prefetch_reader_holds_depth_lease() {
        let (cfg, pool, counter) = setup();
        let file = write_ten(cfg, &pool, &counter);
        let codec = U32RowCodec::new(2);
        {
            let _r =
                SeqReader::open_with_prefetch(&file, codec, &pool, counter.clone(), 3).unwrap();
            assert_eq!(pool.in_use(), 3);
        }
        assert_eq!(pool.in_use(), 0);
        assert!(matches!(
            SeqReader::open_with_prefetch(&file, codec, &pool, counter.clone(), 0),
            Err(StorageError::InvalidArgument(_))
        ));
        assert!(matches!(
            SeqReader::open_with_prefetch(&file, codec, &pool, counter, 100),
            Err(StorageError::PoolExhausted { .. })
        ));
    }

    #[test]
    fn prefetch_reader_surfaces_faults_in_page_order() {
        let (cfg, pool, counter) = setup();
        let clean = write_ten(cfg, &pool, &counter);
        let codec = U32RowCodec::new(2);
        let _scope = FaultScope::install(FaultConfig::new().bit_flip_read(2, 7));
        let mut r =
            SeqReader::open_with_prefetch(&clean, codec, &pool, IoCounter::new(), 4).unwrap();
        // Pages 0 and 1 still yield all their records (3 each) before the
        // damaged page 2 stops the scan, exactly like the unbatched reader.
        let mut ok = 0;
        let err = loop {
            match r.next() {
                Some(Ok(_)) => ok += 1,
                Some(Err(e)) => break e,
                None => panic!("reader must surface the damaged page"),
            }
        };
        assert_eq!(ok, 6);
        assert!(matches!(
            err,
            StorageError::ChecksumMismatch { page: 2, .. }
        ));
        assert!(r.next().is_none());
    }

    #[test]
    fn buffered_writer_leases_extra_pages() {
        let (cfg, pool, counter) = setup();
        let mut file = SimFile::new();
        let codec = U32RowCodec::new(2);
        {
            let mut w =
                SeqWriter::open_buffered(&mut file, codec, cfg, &pool, counter.clone(), 2).unwrap();
            assert_eq!(pool.in_use(), 2);
            for i in 0..10u32 {
                w.push(&vec![i, i * 10]).unwrap();
            }
            w.finish().unwrap();
        }
        assert_eq!(pool.in_use(), 0);
        // Identical layout to the single-buffer writer.
        assert_eq!(file, write_ten(cfg, &pool, &counter));
        let mut other = SimFile::new();
        assert!(matches!(
            SeqWriter::open_buffered(&mut other, codec, cfg, &pool, counter, 0),
            Err(StorageError::InvalidArgument(_))
        ));
    }

    #[test]
    fn drop_flushes_partial_page() {
        let (cfg, pool, counter) = setup();
        let mut file = SimFile::new();
        let codec = U32RowCodec::new(2);
        {
            let mut w = SeqWriter::open(&mut file, codec, cfg, &pool, counter.clone()).unwrap();
            w.push(&vec![1, 2]).unwrap();
            // dropped without finish()
        }
        assert_eq!(file.record_count(), 1);
        assert_eq!(file.page_count(), 1);
    }

    fn first_error(file: &SimFile, pool: &BufferPool) -> StorageError {
        let codec = U32RowCodec::new(2);
        let mut r = SeqReader::open(file, codec, pool, IoCounter::new()).unwrap();
        let e = r
            .by_ref()
            .find_map(|x| x.err())
            .expect("reader must surface an error");
        // After an error the iterator is fused.
        assert!(r.next().is_none());
        e
    }

    #[test]
    fn short_write_surfaces_as_truncated_page() {
        let (cfg, pool, counter) = setup();
        let file = {
            let _scope = FaultScope::install(FaultConfig::new().short_write(1, 3));
            write_ten(cfg, &pool, &counter)
        };
        assert!(matches!(
            first_error(&file, &pool),
            StorageError::Truncated {
                page: 1,
                expected: 24,
                found: 3
            }
        ));
    }

    #[test]
    fn bit_flips_surface_as_checksum_mismatch() {
        let (cfg, pool, counter) = setup();
        let flipped_on_write = {
            let _scope = FaultScope::install(FaultConfig::new().bit_flip_write(2, 40));
            write_ten(cfg, &pool, &counter)
        };
        assert!(matches!(
            first_error(&flipped_on_write, &pool),
            StorageError::ChecksumMismatch { page: 2, .. }
        ));

        let clean = write_ten(cfg, &pool, &counter);
        let _scope = FaultScope::install(FaultConfig::new().bit_flip_read(0, 7));
        assert!(matches!(
            first_error(&clean, &pool),
            StorageError::ChecksumMismatch { page: 0, .. }
        ));
    }

    #[test]
    fn short_read_surfaces_as_truncated_page() {
        let (cfg, pool, counter) = setup();
        let clean = write_ten(cfg, &pool, &counter);
        let _scope = FaultScope::install(FaultConfig::new().short_read(3, 2));
        assert!(matches!(
            first_error(&clean, &pool),
            StorageError::Truncated {
                page: 3,
                expected: 8, // the last page holds the one leftover record
                found: 2
            }
        ));
    }

    #[test]
    fn disk_full_fails_the_write_and_reads_see_truncation() {
        let (cfg, pool, counter) = setup();
        let mut file = SimFile::new();
        let codec = U32RowCodec::new(2);
        let err = {
            let _scope = FaultScope::install(FaultConfig::new().disk_full(1));
            let mut w = SeqWriter::open(&mut file, codec, cfg, &pool, counter.clone()).unwrap();
            let mut err = None;
            for i in 0..10u32 {
                if let Err(e) = w.push(&vec![i, i]) {
                    err = Some(e);
                    break;
                }
            }
            err.or_else(|| w.finish().err())
        };
        assert!(matches!(err, Some(StorageError::DiskFull { page: 1 })));
        // The rejected page is gone; metadata still promises its records,
        // so a later read reports the shortfall instead of inventing data.
        assert_eq!(file.page_count(), 1);
        assert!(matches!(
            first_error(&file, &pool),
            StorageError::Truncated { .. }
        ));
    }

    #[test]
    fn faultless_scope_changes_nothing() {
        let (cfg, pool, counter) = setup();
        let _scope = FaultScope::install(FaultConfig::new());
        let file = write_ten(cfg, &pool, &counter);
        let codec = U32RowCodec::new(2);
        let r = SeqReader::open(&file, codec, &pool, counter.clone()).unwrap();
        let rows: Vec<_> = r.map(|x| x.unwrap()).collect();
        assert_eq!(rows.len(), 10);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]
            /// Any record batch round-trips through a SimFile (checksums
            /// verified on every page), and the I/O bill matches the page
            /// arithmetic exactly.
            #[test]
            fn write_read_round_trip(
                records in proptest::collection::vec(
                    proptest::collection::vec(0u32..1_000_000, 3..=3), 0..200),
                page_size in 16usize..512,
            ) {
                let cfg = PageConfig::with_page_size(page_size);
                let codec = U32RowCodec::new(3);
                prop_assume!(codec.record_len() <= page_size);
                let pool = BufferPool::unbounded();
                let counter = IoCounter::new();
                let mut file = SimFile::new();
                let mut w =
                    SeqWriter::open(&mut file, codec, cfg, &pool, counter.clone()).unwrap();
                for r in &records {
                    w.push(r).unwrap();
                }
                w.finish().unwrap();
                let expected_pages = cfg.pages_for(records.len(), codec.record_len()).unwrap();
                prop_assert_eq!(file.page_count(), expected_pages);
                prop_assert_eq!(counter.stats().page_writes, expected_pages as u64);

                let r = SeqReader::open(&file, codec, &pool, counter.clone()).unwrap();
                let back: Vec<Vec<u32>> = r.map(|x| x.unwrap()).collect();
                prop_assert_eq!(back, records);
                prop_assert_eq!(counter.stats().page_reads, expected_pages as u64);
            }

            /// A single seeded fault anywhere in the schedule never makes
            /// the pipeline panic or silently corrupt: the round trip
            /// either reproduces the input exactly or reports a typed
            /// error.
            #[test]
            fn seeded_fault_is_loud_or_harmless(seed in 0u64..1024) {
                let cfg = PageConfig::with_page_size(16);
                let codec = U32RowCodec::new(2);
                let pool = BufferPool::unbounded();
                let records: Vec<Vec<u32>> = (0..20u32).map(|i| vec![i, i * 3]).collect();
                let _scope = FaultScope::install(FaultConfig::seeded(seed));
                let mut file = SimFile::new();
                let mut w =
                    SeqWriter::open(&mut file, codec, cfg, &pool, IoCounter::new()).unwrap();
                let mut write_err = None;
                for r in &records {
                    if let Err(e) = w.push(r) {
                        write_err = Some(e);
                        break;
                    }
                }
                let write_err = if write_err.is_none() {
                    w.finish().err()
                } else {
                    drop(w);
                    write_err
                };
                if write_err.is_none() {
                    let r = SeqReader::open(&file, codec, &pool, IoCounter::new()).unwrap();
                    let back: Result<Vec<Vec<u32>>, StorageError> = r.collect();
                    // A read error here is a loud failure, which is
                    // acceptable; only silent corruption is not.
                    if let Ok(rows) = back {
                        prop_assert_eq!(rows, records);
                    }
                }
            }
        }
    }
}
