//! Sequential record files over simulated pages.
//!
//! A [`SimFile`] is a sequence of byte pages, each at most `page_size`
//! bytes, holding fixed-size records back to back. [`SeqWriter`] charges one
//! page write each time an output buffer fills (plus one for the final
//! partial page); [`SeqReader`] charges one page read each time it crosses
//! into a new page. These are exactly the sequential-scan semantics assumed
//! by Theorem 3's `O(n/b)` analysis.

use crate::buffer::{BufferPool, PageLease};
use crate::counter::IoCounter;
use crate::error::StorageError;
use crate::page::PageConfig;
use crate::record::FixedCodec;

/// An in-memory simulated file: a vector of byte pages.
///
/// ```
/// use anatomy_storage::{
///     BufferPool, IoCounter, PageConfig, SeqReader, SeqWriter, SimFile, U32RowCodec,
/// };
///
/// let cfg = PageConfig::paper(); // 4096-byte pages
/// let pool = BufferPool::paper(); // 50-page memory budget
/// let counter = IoCounter::new();
/// let codec = U32RowCodec::new(3);
///
/// let mut file = SimFile::new();
/// let mut w = SeqWriter::open(&mut file, codec, cfg, &pool, counter.clone())?;
/// for i in 0..1000u32 {
///     w.push(&vec![i, i * 2, i * 3]);
/// }
/// w.finish();
/// // 341 twelve-byte records per 4096-byte page -> 3 pages written.
/// assert_eq!(counter.stats().page_writes, 3);
///
/// let r = SeqReader::open(&file, codec, &pool, counter.clone())?;
/// assert_eq!(r.count(), 1000);
/// assert_eq!(counter.stats().page_reads, 3);
/// # Ok::<(), anatomy_storage::StorageError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimFile {
    pages: Vec<Box<[u8]>>,
    record_count: usize,
}

impl SimFile {
    /// A new empty file.
    pub fn new() -> Self {
        SimFile::default()
    }

    /// Number of pages on "disk".
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Number of records stored.
    pub fn record_count(&self) -> usize {
        self.record_count
    }

    /// Whether the file holds no records.
    pub fn is_empty(&self) -> bool {
        self.record_count == 0
    }

    /// Total bytes stored (sum of used page bytes).
    pub fn byte_len(&self) -> usize {
        self.pages.iter().map(|p| p.len()).sum()
    }
}

/// Sequential writer that packs fixed-size records into pages.
///
/// Holds one buffer page leased from the pool for the duration of the
/// write. Call [`SeqWriter::finish`] to flush the final partial page; it is
/// also flushed on drop, but `finish` lets the caller observe the file.
pub struct SeqWriter<'a, C: FixedCodec> {
    codec: C,
    cfg: PageConfig,
    counter: IoCounter,
    file: &'a mut SimFile,
    buf: Vec<u8>,
    _lease: PageLease,
}

impl<'a, C: FixedCodec> SeqWriter<'a, C> {
    /// Open a writer appending to `file`, leasing one buffer page from
    /// `pool`.
    pub fn open(
        file: &'a mut SimFile,
        codec: C,
        cfg: PageConfig,
        pool: &BufferPool,
        counter: IoCounter,
    ) -> Result<Self, StorageError> {
        if codec.record_len() > cfg.page_size {
            return Err(StorageError::RecordLargerThanPage {
                record_len: codec.record_len(),
                page_size: cfg.page_size,
            });
        }
        let lease = pool.try_lease(1)?;
        Ok(SeqWriter {
            codec,
            cfg,
            counter,
            file,
            buf: Vec::with_capacity(cfg.page_size),
            _lease: lease,
        })
    }

    /// Append one record.
    pub fn push(&mut self, record: &C::Record) {
        if self.buf.len() + self.codec.record_len() > self.cfg.page_size {
            self.flush_page();
        }
        self.codec.encode(record, &mut self.buf);
        self.file.record_count += 1;
    }

    fn flush_page(&mut self) {
        if !self.buf.is_empty() {
            let page = std::mem::replace(&mut self.buf, Vec::with_capacity(self.cfg.page_size));
            self.file.pages.push(page.into_boxed_slice());
            self.counter.add_writes(1);
        }
    }

    /// Flush the final partial page and release the buffer.
    pub fn finish(mut self) {
        self.flush_page();
    }
}

impl<C: FixedCodec> Drop for SeqWriter<'_, C> {
    fn drop(&mut self) {
        self.flush_page();
    }
}

/// Sequential reader over a [`SimFile`].
///
/// Holds one buffer page leased from the pool. Implements `Iterator`,
/// yielding decoded records; a page read is charged lazily when the cursor
/// first touches each page.
pub struct SeqReader<'a, C: FixedCodec> {
    codec: C,
    counter: IoCounter,
    file: &'a SimFile,
    page_idx: usize,
    offset: usize,
    _lease: PageLease,
}

impl<'a, C: FixedCodec> SeqReader<'a, C> {
    /// Open a reader over `file`, leasing one buffer page from `pool`.
    pub fn open(
        file: &'a SimFile,
        codec: C,
        pool: &BufferPool,
        counter: IoCounter,
    ) -> Result<Self, StorageError> {
        let lease = pool.try_lease(1)?;
        Ok(SeqReader {
            codec,
            counter,
            file,
            page_idx: 0,
            offset: 0,
            _lease: lease,
        })
    }
}

impl<C: FixedCodec> Iterator for SeqReader<'_, C> {
    type Item = Result<C::Record, StorageError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let page = self.file.pages.get(self.page_idx)?;
            if self.offset == 0 {
                // first touch of this page
                self.counter.add_reads(1);
            }
            if self.offset + self.codec.record_len() <= page.len() {
                let mut slice = &page[self.offset..];
                let rec = self.codec.decode(&mut slice);
                self.offset += self.codec.record_len();
                return Some(rec);
            }
            // move to next page
            self.page_idx += 1;
            self.offset = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::U32RowCodec;

    fn setup() -> (PageConfig, BufferPool, IoCounter) {
        // Tiny pages: 3 records of arity 2 (8 bytes each) per 25-byte page.
        (
            PageConfig::with_page_size(25),
            BufferPool::new(8),
            IoCounter::new(),
        )
    }

    #[test]
    fn write_read_round_trip() {
        let (cfg, pool, counter) = setup();
        let mut file = SimFile::new();
        let codec = U32RowCodec::new(2);
        let mut w = SeqWriter::open(&mut file, codec, cfg, &pool, counter.clone()).unwrap();
        for i in 0..10u32 {
            w.push(&vec![i, i * 10]);
        }
        w.finish();

        assert_eq!(file.record_count(), 10);
        // 3 records per page -> ceil(10/3) = 4 pages
        assert_eq!(file.page_count(), 4);
        assert_eq!(counter.stats().page_writes, 4);

        let r = SeqReader::open(&file, codec, &pool, counter.clone()).unwrap();
        let rows: Vec<Vec<u32>> = r.map(|x| x.unwrap()).collect();
        assert_eq!(rows.len(), 10);
        assert_eq!(rows[7], vec![7, 70]);
        assert_eq!(counter.stats().page_reads, 4);
    }

    #[test]
    fn io_matches_page_math() {
        let cfg = PageConfig::with_page_size(4096);
        let pool = BufferPool::unbounded();
        let counter = IoCounter::new();
        let codec = U32RowCodec::new(8); // 32 bytes -> 128 per page
        let mut file = SimFile::new();
        let mut w = SeqWriter::open(&mut file, codec, cfg, &pool, counter.clone()).unwrap();
        let n = 1000usize;
        for i in 0..n {
            w.push(&vec![i as u32; 8]);
        }
        w.finish();
        let expected_pages = cfg.pages_for(n, codec.record_len());
        assert_eq!(expected_pages, 8); // ceil(1000/128)
        assert_eq!(file.page_count(), expected_pages);
        assert_eq!(counter.stats().page_writes, expected_pages as u64);
    }

    #[test]
    fn empty_file_costs_nothing() {
        let (cfg, pool, counter) = setup();
        let mut file = SimFile::new();
        let codec = U32RowCodec::new(2);
        let w = SeqWriter::open(&mut file, codec, cfg, &pool, counter.clone()).unwrap();
        w.finish();
        assert!(file.is_empty());
        assert_eq!(file.page_count(), 0);

        let mut r = SeqReader::open(&file, codec, &pool, counter.clone()).unwrap();
        assert!(r.next().is_none());
        assert_eq!(counter.stats().total(), 0);
    }

    #[test]
    fn writer_and_reader_hold_leases() {
        let (cfg, pool, counter) = setup();
        let mut file = SimFile::new();
        let codec = U32RowCodec::new(2);
        {
            let _w = SeqWriter::open(&mut file, codec, cfg, &pool, counter.clone()).unwrap();
            assert_eq!(pool.in_use(), 1);
        }
        assert_eq!(pool.in_use(), 0);
        {
            let _r = SeqReader::open(&file, codec, &pool, counter.clone()).unwrap();
            assert_eq!(pool.in_use(), 1);
        }
        assert_eq!(pool.in_use(), 0);
    }

    #[test]
    fn pool_exhaustion_blocks_open() {
        let (cfg, _, counter) = setup();
        let pool = BufferPool::new(1);
        let mut file = SimFile::new();
        let codec = U32RowCodec::new(2);
        let _w = SeqWriter::open(&mut file, codec, cfg, &pool, counter.clone()).unwrap();
        let file2 = SimFile::new();
        assert!(matches!(
            SeqReader::open(&file2, codec, &pool, counter),
            Err(StorageError::PoolExhausted { .. })
        ));
    }

    #[test]
    fn oversized_record_rejected() {
        let cfg = PageConfig::with_page_size(4);
        let pool = BufferPool::unbounded();
        let counter = IoCounter::new();
        let mut file = SimFile::new();
        assert!(matches!(
            SeqWriter::open(&mut file, U32RowCodec::new(2), cfg, &pool, counter),
            Err(StorageError::RecordLargerThanPage {
                record_len: 8,
                page_size: 4
            })
        ));
    }

    #[test]
    fn drop_flushes_partial_page() {
        let (cfg, pool, counter) = setup();
        let mut file = SimFile::new();
        let codec = U32RowCodec::new(2);
        {
            let mut w = SeqWriter::open(&mut file, codec, cfg, &pool, counter.clone()).unwrap();
            w.push(&vec![1, 2]);
            // dropped without finish()
        }
        assert_eq!(file.record_count(), 1);
        assert_eq!(file.page_count(), 1);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]
            /// Any record batch round-trips through a SimFile, and the
            /// I/O bill matches the page arithmetic exactly.
            #[test]
            fn write_read_round_trip(
                records in proptest::collection::vec(
                    proptest::collection::vec(0u32..1_000_000, 3..=3), 0..200),
                page_size in 16usize..512,
            ) {
                let cfg = PageConfig::with_page_size(page_size);
                let codec = U32RowCodec::new(3);
                prop_assume!(codec.record_len() <= page_size);
                let pool = BufferPool::unbounded();
                let counter = IoCounter::new();
                let mut file = SimFile::new();
                let mut w =
                    SeqWriter::open(&mut file, codec, cfg, &pool, counter.clone()).unwrap();
                for r in &records {
                    w.push(r);
                }
                w.finish();
                let expected_pages = cfg.pages_for(records.len(), codec.record_len());
                prop_assert_eq!(file.page_count(), expected_pages);
                prop_assert_eq!(counter.stats().page_writes, expected_pages as u64);

                let r = SeqReader::open(&file, codec, &pool, counter.clone()).unwrap();
                let back: Vec<Vec<u32>> = r.map(|x| x.unwrap()).collect();
                prop_assert_eq!(back, records);
                prop_assert_eq!(counter.stats().page_reads, expected_pages as u64);
            }
        }
    }
}
