//! Error type for the simulated storage layer.

use std::fmt;

/// Errors produced by the simulated storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A record is larger than a page and can never be stored.
    RecordTooLarge {
        /// Encoded record length in bytes.
        record_len: usize,
        /// Configured page size in bytes.
        page_size: usize,
    },
    /// The buffer pool has no free frames for a requested lease.
    PoolExhausted {
        /// Pages requested.
        requested: usize,
        /// Pages currently free.
        available: usize,
        /// Total pool capacity.
        capacity: usize,
    },
    /// A page's bytes could not be decoded as records (corruption or a
    /// codec/file mismatch).
    Decode(String),
    /// An operation was asked to partition into zero buckets, or a similar
    /// degenerate request.
    InvalidArgument(String),
    /// A page header's magic number is wrong: the bytes are not a page
    /// written by this layer (or the header itself was damaged).
    BadMagic {
        /// Index of the offending page within its file.
        page: usize,
        /// The magic value actually found.
        found: u32,
    },
    /// A page header carries a format version this build does not read.
    UnsupportedVersion {
        /// Index of the offending page within its file.
        page: usize,
        /// The version actually found.
        found: u16,
    },
    /// A page's checksum does not match its payload: the stored bytes
    /// were altered after the header was computed.
    ChecksumMismatch {
        /// Index of the offending page within its file.
        page: usize,
        /// Checksum recorded in the header.
        expected: u32,
        /// Checksum of the bytes actually read.
        found: u32,
    },
    /// Fewer bytes (or records) than promised survived on disk: a short
    /// write or read cut the data off.
    Truncated {
        /// Index of the page where the shortfall was detected (one past
        /// the last page when the file itself ends early).
        page: usize,
        /// Units promised by the metadata.
        expected: usize,
        /// Units actually present.
        found: usize,
    },
    /// The simulated device rejected a page write (ENOSPC).
    DiskFull {
        /// Index the rejected page would have had.
        page: usize,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::RecordTooLarge {
                record_len,
                page_size,
            } => write!(
                f,
                "record of {record_len} bytes cannot fit in a {page_size}-byte page"
            ),
            StorageError::PoolExhausted {
                requested,
                available,
                capacity,
            } => write!(
                f,
                "buffer pool exhausted: requested {requested} pages, {available} free of {capacity}"
            ),
            StorageError::Decode(msg) => write!(f, "record decode failed: {msg}"),
            StorageError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            StorageError::BadMagic { page, found } => {
                write!(
                    f,
                    "page {page}: bad magic 0x{found:08x}, not an anatomy page"
                )
            }
            StorageError::UnsupportedVersion { page, found } => {
                write!(f, "page {page}: unsupported page-format version {found}")
            }
            StorageError::ChecksumMismatch {
                page,
                expected,
                found,
            } => write!(
                f,
                "page {page}: checksum mismatch (header 0x{expected:08x}, payload 0x{found:08x})"
            ),
            StorageError::Truncated {
                page,
                expected,
                found,
            } => write!(
                f,
                "truncated at page {page}: expected {expected}, found {found}"
            ),
            StorageError::DiskFull { page } => {
                write!(f, "device full: page {page} could not be written")
            }
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_numbers() {
        let e = StorageError::RecordTooLarge {
            record_len: 8192,
            page_size: 4096,
        };
        assert!(e.to_string().contains("8192"));
        let e = StorageError::PoolExhausted {
            requested: 3,
            available: 1,
            capacity: 50,
        };
        assert!(e.to_string().contains("50"));
    }

    #[test]
    fn integrity_variants_name_the_page() {
        let cases: Vec<StorageError> = vec![
            StorageError::BadMagic {
                page: 7,
                found: 0xdead_beef,
            },
            StorageError::UnsupportedVersion { page: 7, found: 9 },
            StorageError::ChecksumMismatch {
                page: 7,
                expected: 1,
                found: 2,
            },
            StorageError::Truncated {
                page: 7,
                expected: 96,
                found: 12,
            },
            StorageError::DiskFull { page: 7 },
        ];
        for e in cases {
            assert!(e.to_string().contains('7'), "{e}");
        }
    }
}
