//! Error type for the simulated storage layer.

use std::fmt;

/// Errors produced by the simulated storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A record is larger than a page and can never be stored.
    RecordLargerThanPage {
        /// Encoded record length in bytes.
        record_len: usize,
        /// Configured page size in bytes.
        page_size: usize,
    },
    /// The buffer pool has no free frames for a requested lease.
    PoolExhausted {
        /// Pages requested.
        requested: usize,
        /// Pages currently free.
        available: usize,
        /// Total pool capacity.
        capacity: usize,
    },
    /// A page's bytes could not be decoded as records (corruption or a
    /// codec/file mismatch).
    Decode(String),
    /// An operation was asked to partition into zero buckets, or a similar
    /// degenerate request.
    InvalidArgument(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::RecordLargerThanPage {
                record_len,
                page_size,
            } => write!(
                f,
                "record of {record_len} bytes cannot fit in a {page_size}-byte page"
            ),
            StorageError::PoolExhausted {
                requested,
                available,
                capacity,
            } => write!(
                f,
                "buffer pool exhausted: requested {requested} pages, {available} free of {capacity}"
            ),
            StorageError::Decode(msg) => write!(f, "record decode failed: {msg}"),
            StorageError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_numbers() {
        let e = StorageError::RecordLargerThanPage {
            record_len: 8192,
            page_size: 4096,
        };
        assert!(e.to_string().contains("8192"));
        let e = StorageError::PoolExhausted {
            requested: 3,
            available: 1,
            capacity: 50,
        };
        assert!(e.to_string().contains("50"));
    }
}
