//! A fixed budget of in-memory pages.
//!
//! The paper's experiments run with "a memory capacity of 50 pages"
//! (Section 6.2), and Theorem 3's proof is explicit about how `Anatomize`
//! spends that budget: one buffer page per hash bucket during partitioning,
//! one input page per bucket plus one output page during group creation, and
//! so on. [`BufferPool`] makes that accounting *enforced* instead of
//! narrated: every reader and writer must hold a [`PageLease`] and
//! construction fails loudly when an algorithm would exceed its budget.
//!
//! The free count is a lock-free atomic so concurrent readers (the sharded
//! anatomize pipeline leases per-shard budgets from worker threads) never
//! serialize on a mutex just to charge pages.

use crate::error::StorageError;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

#[derive(Debug)]
struct PoolInner {
    capacity: usize,
    free: AtomicUsize,
}

/// A pool of simulated buffer pages with a hard capacity.
#[derive(Debug, Clone)]
pub struct BufferPool {
    inner: Arc<PoolInner>,
}

impl BufferPool {
    /// A pool with `capacity` pages.
    pub fn new(capacity: usize) -> Self {
        BufferPool {
            inner: Arc::new(PoolInner {
                capacity,
                free: AtomicUsize::new(capacity),
            }),
        }
    }

    /// The paper's 50-page budget.
    pub fn paper() -> Self {
        BufferPool::new(crate::page::PAPER_MEMORY_PAGES)
    }

    /// An effectively unlimited pool, for tests and for in-memory callers
    /// that do not model a memory budget.
    pub fn unbounded() -> Self {
        BufferPool::new(usize::MAX / 2)
    }

    /// Total capacity in pages.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Pages currently free.
    pub fn free(&self) -> usize {
        self.inner.free.load(Ordering::Acquire)
    }

    /// Pages currently leased.
    pub fn in_use(&self) -> usize {
        self.capacity() - self.free()
    }

    /// Acquire `pages` buffer pages, or fail if the pool cannot supply them.
    ///
    /// The lease is released when the returned [`PageLease`] is dropped.
    /// Safe to call from any thread; concurrent leases race on a
    /// compare-exchange loop, so two threads can never jointly overdraw
    /// the budget.
    pub fn try_lease(&self, pages: usize) -> Result<PageLease, StorageError> {
        let mut free = self.inner.free.load(Ordering::Acquire);
        loop {
            if pages > free {
                return Err(StorageError::PoolExhausted {
                    requested: pages,
                    available: free,
                    capacity: self.inner.capacity,
                });
            }
            match self.inner.free.compare_exchange_weak(
                free,
                free - pages,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    return Ok(PageLease {
                        pool: Arc::clone(&self.inner),
                        pages,
                    })
                }
                Err(actual) => free = actual,
            }
        }
    }
}

/// RAII lease over a number of buffer pages; pages return to the pool on
/// drop.
#[derive(Debug)]
pub struct PageLease {
    pool: Arc<PoolInner>,
    pages: usize,
}

impl PageLease {
    /// Number of pages held by this lease.
    pub fn pages(&self) -> usize {
        self.pages
    }
}

impl Drop for PageLease {
    fn drop(&mut self) {
        self.pool.free.fetch_add(self.pages, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lease_and_release() {
        let pool = BufferPool::new(10);
        assert_eq!(pool.free(), 10);
        let a = pool.try_lease(4).unwrap();
        assert_eq!(pool.free(), 6);
        assert_eq!(pool.in_use(), 4);
        assert_eq!(a.pages(), 4);
        drop(a);
        assert_eq!(pool.free(), 10);
    }

    #[test]
    fn exhaustion_is_reported() {
        let pool = BufferPool::new(3);
        let _a = pool.try_lease(2).unwrap();
        let err = pool.try_lease(2).unwrap_err();
        assert_eq!(
            err,
            StorageError::PoolExhausted {
                requested: 2,
                available: 1,
                capacity: 3
            }
        );
    }

    #[test]
    fn clones_share_the_budget() {
        let pool = BufferPool::new(5);
        let pool2 = pool.clone();
        let _a = pool.try_lease(3).unwrap();
        assert_eq!(pool2.free(), 2);
        assert!(pool2.try_lease(3).is_err());
    }

    #[test]
    fn paper_pool_has_fifty_pages() {
        assert_eq!(BufferPool::paper().capacity(), 50);
    }

    #[test]
    fn zero_page_lease_always_succeeds() {
        let pool = BufferPool::new(0);
        let l = pool.try_lease(0).unwrap();
        assert_eq!(l.pages(), 0);
    }

    #[test]
    fn concurrent_leases_never_overdraw() {
        let pool = BufferPool::new(64);
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let pool = pool.clone();
                std::thread::spawn(move || {
                    for _ in 0..200 {
                        if let Ok(lease) = pool.try_lease(7) {
                            assert!(pool.free() <= pool.capacity());
                            drop(lease);
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(pool.free(), 64);
        assert_eq!(pool.in_use(), 0);
    }
}
