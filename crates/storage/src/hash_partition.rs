//! External hash partitioning.
//!
//! Line 2 of the paper's `Anatomize` (Figure 3) "hashes the tuples in T by
//! their As values (each bucket per As value)". With `λ` distinct sensitive
//! values and a pool of `B` buffer pages this is:
//!
//! * a single partitioning pass when `λ + 1 ≤ B` (one output buffer per
//!   bucket plus one input page), costing one read and one write of the
//!   data — the `O(n/b)` of Theorem 3; or
//! * recursive multi-pass partitioning when the fan-out exceeds the budget,
//!   splitting the key range into at most `B − 1` chunks per pass, exactly
//!   like classic external hash partitioning.
//!
//! Keys must already lie in `0..num_buckets`; for `Anatomize` the key *is*
//! the sensitive value code.

use crate::buffer::BufferPool;
use crate::counter::IoCounter;
use crate::error::StorageError;
use crate::file::{SeqReader, SeqWriter, SimFile};
use crate::page::PageConfig;
use crate::record::U32RowCodec;

/// Partition `input` into `num_buckets` files by `key(record)`.
///
/// Returns one file per key in key order (`result[k]` holds the records
/// with `key == k`); empty keys yield empty files. Fails if a record's key
/// is outside `0..num_buckets`.
pub fn hash_partition(
    input: &SimFile,
    codec: U32RowCodec,
    key: impl Fn(&[u32]) -> u32 + Copy,
    num_buckets: usize,
    cfg: PageConfig,
    pool: &BufferPool,
    counter: &IoCounter,
) -> Result<Vec<SimFile>, StorageError> {
    if num_buckets == 0 {
        return Err(StorageError::InvalidArgument(
            "cannot partition into 0 buckets".into(),
        ));
    }
    partition_range(input, codec, key, 0, num_buckets as u32, cfg, pool, counter)
}

/// One scan of `input`, routing each record into one of `nout` fresh output
/// files chosen by `bucket_of(key)`. Charges one read of the input and one
/// write of the outputs.
#[allow(clippy::too_many_arguments)]
fn write_pass(
    input: &SimFile,
    codec: U32RowCodec,
    key: impl Fn(&[u32]) -> u32,
    lo: u32,
    hi: u32,
    bucket_of: impl Fn(u32) -> usize,
    nout: usize,
    cfg: PageConfig,
    pool: &BufferPool,
    counter: &IoCounter,
) -> Result<Vec<SimFile>, StorageError> {
    let mut outputs: Vec<SimFile> = (0..nout).map(|_| SimFile::new()).collect();
    {
        let mut writers: Vec<SeqWriter<'_, U32RowCodec>> = Vec::with_capacity(nout);
        for f in outputs.iter_mut() {
            writers.push(SeqWriter::open(f, codec, cfg, pool, counter.clone())?);
        }
        let reader = SeqReader::open(input, codec, pool, counter.clone())?;
        for rec in reader {
            let rec = rec?;
            let k = key(&rec);
            if k < lo || k >= hi {
                return Err(StorageError::InvalidArgument(format!(
                    "record key {k} outside partition range [{lo}, {hi})"
                )));
            }
            writers[bucket_of(k)].push(&rec)?;
        }
        // Finish explicitly so a failed flush of a partial page (e.g. a
        // full device) propagates instead of vanishing in a drop.
        for w in writers {
            w.finish()?;
        }
    }
    Ok(outputs)
}

/// Partition the records of `input` whose keys lie in `[lo, hi)` into
/// `hi - lo` per-key files.
#[allow(clippy::too_many_arguments)]
fn partition_range(
    input: &SimFile,
    codec: U32RowCodec,
    key: impl Fn(&[u32]) -> u32 + Copy,
    lo: u32,
    hi: u32,
    cfg: PageConfig,
    pool: &BufferPool,
    counter: &IoCounter,
) -> Result<Vec<SimFile>, StorageError> {
    let span = (hi - lo) as usize;
    debug_assert!(span >= 1);

    // Buffer budget for this pass: one input page plus one output page per
    // partition. A pool smaller than 3 pages cannot even split two ways.
    let budget = pool.capacity().saturating_sub(pool.in_use());
    if budget < 3 {
        return Err(StorageError::PoolExhausted {
            requested: 3,
            available: budget,
            capacity: pool.capacity(),
        });
    }
    let max_fanout = budget - 1;

    if span <= max_fanout {
        // Direct pass: one output file per key.
        return write_pass(
            input,
            codec,
            key,
            lo,
            hi,
            |k| (k - lo) as usize,
            span,
            cfg,
            pool,
            counter,
        );
    }

    // Multi-pass: split the key range into contiguous chunks, one output
    // file per chunk, then recurse into each chunk. Use the *fewest*
    // chunks that still let each chunk finish in one more direct pass
    // (every extra chunk costs a partial output page); fall back to the
    // full fanout for ranges too wide for two levels.
    let chunks = span.div_ceil(max_fanout).min(max_fanout);
    let chunk_size = span.div_ceil(chunks);
    let chunk_files = write_pass(
        input,
        codec,
        key,
        lo,
        hi,
        |k| ((k - lo) as usize) / chunk_size,
        chunks,
        cfg,
        pool,
        counter,
    )?;

    let mut out = Vec::with_capacity(span);
    for (i, chunk_file) in chunk_files.into_iter().enumerate() {
        let c_lo = lo + (i * chunk_size) as u32;
        let c_hi = hi.min(c_lo + chunk_size as u32);
        if c_lo >= c_hi {
            continue;
        }
        let sub = partition_range(&chunk_file, codec, key, c_lo, c_hi, cfg, pool, counter)?;
        out.extend(sub);
    }
    debug_assert_eq!(out.len(), span);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_input(keys: &[u32], cfg: PageConfig, pool: &BufferPool) -> SimFile {
        let counter = IoCounter::new();
        let codec = U32RowCodec::new(2);
        let mut f = SimFile::new();
        let mut w = SeqWriter::open(&mut f, codec, cfg, pool, counter).unwrap();
        for (i, &k) in keys.iter().enumerate() {
            w.push(&vec![k, i as u32]).unwrap();
        }
        w.finish().unwrap();
        f
    }

    fn read_all(f: &SimFile, pool: &BufferPool) -> Vec<Vec<u32>> {
        SeqReader::open(f, U32RowCodec::new(2), pool, IoCounter::new())
            .unwrap()
            .map(|r| r.unwrap())
            .collect()
    }

    #[test]
    fn single_pass_partitions_by_key() {
        let cfg = PageConfig::with_page_size(64);
        let pool = BufferPool::new(16);
        let keys = [2u32, 0, 1, 2, 2, 0];
        let input = make_input(&keys, cfg, &pool);
        let counter = IoCounter::new();
        let parts = hash_partition(
            &input,
            U32RowCodec::new(2),
            |r| r[0],
            3,
            cfg,
            &pool,
            &counter,
        )
        .unwrap();
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0].record_count(), 2);
        assert_eq!(parts[1].record_count(), 1);
        assert_eq!(parts[2].record_count(), 3);
        for (k, p) in parts.iter().enumerate() {
            for rec in read_all(p, &pool) {
                assert_eq!(rec[0] as usize, k);
            }
        }
        // All leases returned.
        assert_eq!(pool.in_use(), 0);
    }

    #[test]
    fn multi_pass_when_fanout_exceeds_budget() {
        let cfg = PageConfig::with_page_size(16); // 2 records per page
        let pool = BufferPool::new(4); // fanout at most 3 per pass
        let keys: Vec<u32> = (0..40).map(|i| i % 10).collect();
        let input = make_input(&keys, cfg, &pool);
        let counter = IoCounter::new();
        let parts = hash_partition(
            &input,
            U32RowCodec::new(2),
            |r| r[0],
            10,
            cfg,
            &pool,
            &counter,
        )
        .unwrap();
        assert_eq!(parts.len(), 10);
        for (k, p) in parts.iter().enumerate() {
            assert_eq!(p.record_count(), 4, "bucket {k}");
            for rec in read_all(p, &pool) {
                assert_eq!(rec[0] as usize, k);
            }
        }
        // Multi-pass must cost strictly more than one read+write of the data.
        let single_pass_cost = 2 * input.page_count() as u64;
        assert!(counter.stats().total() > single_pass_cost);
        assert_eq!(pool.in_use(), 0);
    }

    #[test]
    fn single_pass_costs_one_read_and_one_write_of_the_data() {
        let cfg = PageConfig::with_page_size(4096);
        let pool = BufferPool::new(50);
        let keys: Vec<u32> = (0..5000).map(|i| i % 10).collect();
        let input = make_input(&keys, cfg, &pool);
        let counter = IoCounter::new();
        let parts = hash_partition(
            &input,
            U32RowCodec::new(2),
            |r| r[0],
            10,
            cfg,
            &pool,
            &counter,
        )
        .unwrap();
        let in_pages = input.page_count() as u64;
        let out_pages: u64 = parts.iter().map(|p| p.page_count() as u64).sum();
        let s = counter.stats();
        assert_eq!(s.page_reads, in_pages);
        assert_eq!(s.page_writes, out_pages);
    }

    #[test]
    fn out_of_range_key_is_an_error() {
        let cfg = PageConfig::with_page_size(64);
        let pool = BufferPool::new(16);
        let input = make_input(&[5], cfg, &pool);
        let counter = IoCounter::new();
        let err = hash_partition(
            &input,
            U32RowCodec::new(2),
            |r| r[0],
            3,
            cfg,
            &pool,
            &counter,
        )
        .unwrap_err();
        assert!(matches!(err, StorageError::InvalidArgument(_)));
    }

    #[test]
    fn zero_buckets_rejected() {
        let cfg = PageConfig::with_page_size(64);
        let pool = BufferPool::new(16);
        let input = SimFile::new();
        let counter = IoCounter::new();
        assert!(hash_partition(
            &input,
            U32RowCodec::new(2),
            |r| r[0],
            0,
            cfg,
            &pool,
            &counter
        )
        .is_err());
    }

    #[test]
    fn empty_input_yields_empty_buckets() {
        let cfg = PageConfig::with_page_size(64);
        let pool = BufferPool::new(16);
        let input = SimFile::new();
        let counter = IoCounter::new();
        let parts = hash_partition(
            &input,
            U32RowCodec::new(2),
            |r| r[0],
            4,
            cfg,
            &pool,
            &counter,
        )
        .unwrap();
        assert_eq!(parts.len(), 4);
        assert!(parts.iter().all(|p| p.is_empty()));
        assert_eq!(counter.stats().total(), 0);
    }

    #[test]
    fn tiny_pool_is_rejected() {
        let cfg = PageConfig::with_page_size(64);
        let pool = BufferPool::new(2);
        let input = make_input(&[0], cfg, &BufferPool::unbounded());
        let counter = IoCounter::new();
        assert!(matches!(
            hash_partition(
                &input,
                U32RowCodec::new(2),
                |r| r[0],
                2,
                cfg,
                &pool,
                &counter
            ),
            Err(StorageError::PoolExhausted { .. })
        ));
    }

    #[test]
    fn partition_preserves_every_record_exactly_once() {
        let cfg = PageConfig::with_page_size(16);
        let pool = BufferPool::new(5);
        let keys: Vec<u32> = (0..97).map(|i| (i * 7) % 13).collect();
        let input = make_input(&keys, cfg, &pool);
        let counter = IoCounter::new();
        let parts = hash_partition(
            &input,
            U32RowCodec::new(2),
            |r| r[0],
            13,
            cfg,
            &pool,
            &counter,
        )
        .unwrap();
        let total: usize = parts.iter().map(|p| p.record_count()).sum();
        assert_eq!(total, 97);
        // Payload field (original position) must appear exactly once.
        let mut seen = [false; 97];
        for p in &parts {
            for rec in read_all(p, &pool) {
                let pos = rec[1] as usize;
                assert!(!seen[pos], "record {pos} duplicated");
                seen[pos] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }
}
