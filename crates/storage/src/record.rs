//! Fixed-size record codecs.
//!
//! Files in this workspace store *fixed-size* records: tuples of `u32`
//! codes, optionally with a group id. Fixed-size records make the paper's
//! per-page arithmetic exact — a page holds `⌊page_size / record_len⌋`
//! records, which is the `b` of the `O(n/b)` bounds in Theorem 3.

use crate::error::StorageError;

/// A codec for records of one fixed encoded size.
///
/// Implementations must encode every record to exactly
/// [`FixedCodec::record_len`] bytes.
pub trait FixedCodec {
    /// The record type this codec serializes.
    type Record;

    /// Encoded length in bytes of every record.
    fn record_len(&self) -> usize;

    /// Append the record's encoding (exactly `record_len` bytes) to `out`.
    fn encode(&self, record: &Self::Record, out: &mut Vec<u8>);

    /// Decode one record from the front of `buf` (exactly `record_len`
    /// bytes are consumed).
    fn decode(&self, buf: &mut &[u8]) -> Result<Self::Record, StorageError>;
}

/// Codec for rows of `arity` little-endian `u32` codes.
///
/// This covers every record type the anatomizing pipeline needs:
/// * microdata tuples — `arity = d + 1` (QI values plus the sensitive code);
/// * QIT tuples — `arity = d + 1` (QI values plus the group id,
///   Definition 3);
/// * ST records — `arity = 3` (group id, sensitive value, count);
/// * QI-group file entries — `arity = d + 2` (tuple plus group id).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct U32RowCodec {
    arity: usize,
}

impl U32RowCodec {
    /// A codec for rows of `arity` u32 values.
    pub fn new(arity: usize) -> Self {
        assert!(arity > 0, "row records need at least one field");
        U32RowCodec { arity }
    }

    /// Number of u32 fields per record.
    pub fn arity(&self) -> usize {
        self.arity
    }
}

impl FixedCodec for U32RowCodec {
    type Record = Vec<u32>;

    fn record_len(&self) -> usize {
        self.arity * 4
    }

    fn encode(&self, record: &Vec<u32>, out: &mut Vec<u8>) {
        assert_eq!(
            record.len(),
            self.arity,
            "row arity mismatch: codec expects {}, record has {}",
            self.arity,
            record.len()
        );
        for &v in record {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }

    fn decode(&self, buf: &mut &[u8]) -> Result<Vec<u32>, StorageError> {
        if buf.len() < self.record_len() {
            return Err(StorageError::Decode(format!(
                "need {} bytes for a {}-field row, have {}",
                self.record_len(),
                self.arity,
                buf.len()
            )));
        }
        let mut row = Vec::with_capacity(self.arity);
        for _ in 0..self.arity {
            let (word, rest) = buf.split_at(4);
            row.push(u32::from_le_bytes(word.try_into().expect("4-byte split")));
            *buf = rest;
        }
        Ok(row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let codec = U32RowCodec::new(3);
        let mut bytes = Vec::new();
        codec.encode(&vec![1, 2, 3], &mut bytes);
        codec.encode(&vec![4, 5, u32::MAX], &mut bytes);
        assert_eq!(bytes.len(), 2 * codec.record_len());

        let mut cursor: &[u8] = &bytes;
        assert_eq!(codec.decode(&mut cursor).unwrap(), vec![1, 2, 3]);
        assert_eq!(codec.decode(&mut cursor).unwrap(), vec![4, 5, u32::MAX]);
        assert!(cursor.is_empty());
    }

    #[test]
    fn record_len_is_four_per_field() {
        assert_eq!(U32RowCodec::new(1).record_len(), 4);
        assert_eq!(U32RowCodec::new(8).record_len(), 32);
    }

    #[test]
    fn decode_short_buffer_errors() {
        let codec = U32RowCodec::new(2);
        let bytes = [1u8, 2, 3]; // 3 bytes < 8
        let mut cursor: &[u8] = &bytes;
        assert!(matches!(
            codec.decode(&mut cursor),
            Err(StorageError::Decode(_))
        ));
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn encode_wrong_arity_panics() {
        let codec = U32RowCodec::new(2);
        let mut out = Vec::new();
        codec.encode(&vec![1, 2, 3], &mut out);
    }

    #[test]
    #[should_panic(expected = "at least one field")]
    fn zero_arity_rejected() {
        let _ = U32RowCodec::new(0);
    }

    #[test]
    fn encoding_is_little_endian() {
        let codec = U32RowCodec::new(1);
        let mut out = Vec::new();
        codec.encode(&vec![0x0102_0304], &mut out);
        assert_eq!(out, vec![0x04, 0x03, 0x02, 0x01]);
    }
}
