//! Shared logical-I/O counters.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A point-in-time snapshot of I/O counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoStats {
    /// Pages read.
    pub page_reads: u64,
    /// Pages written.
    pub page_writes: u64,
}

impl IoStats {
    /// Total I/Os — the quantity plotted on the y-axis of the paper's
    /// Figures 8 and 9.
    pub fn total(&self) -> u64 {
        self.page_reads + self.page_writes
    }

    /// Counts accumulated since an earlier snapshot.
    pub fn since(&self, earlier: &IoStats) -> IoStats {
        IoStats {
            page_reads: self.page_reads - earlier.page_reads,
            page_writes: self.page_writes - earlier.page_writes,
        }
    }
}

impl fmt::Display for IoStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} I/Os ({} reads, {} writes)",
            self.total(),
            self.page_reads,
            self.page_writes
        )
    }
}

/// A cheaply clonable, thread-safe pair of page counters.
///
/// Every file and buffer pool participating in one experiment is created
/// with a clone of the same counter, so the experiment harness can read a
/// single total at the end.
#[derive(Debug, Clone, Default)]
pub struct IoCounter {
    inner: Arc<Counters>,
}

#[derive(Debug, Default)]
struct Counters {
    reads: AtomicU64,
    writes: AtomicU64,
}

impl IoCounter {
    /// A fresh counter at zero.
    pub fn new() -> Self {
        IoCounter::default()
    }

    /// Charge `pages` page reads.
    #[inline]
    pub fn add_reads(&self, pages: u64) {
        self.inner.reads.fetch_add(pages, Ordering::Relaxed);
    }

    /// Charge `pages` page writes.
    #[inline]
    pub fn add_writes(&self, pages: u64) {
        self.inner.writes.fetch_add(pages, Ordering::Relaxed);
    }

    /// Snapshot the current counts.
    pub fn stats(&self) -> IoStats {
        IoStats {
            page_reads: self.inner.reads.load(Ordering::Relaxed),
            page_writes: self.inner.writes.load(Ordering::Relaxed),
        }
    }

    /// Reset both counters to zero (between experiment runs).
    pub fn reset(&self) {
        self.inner.reads.store(0, Ordering::Relaxed);
        self.inner.writes.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_accumulate() {
        let c = IoCounter::new();
        c.add_reads(3);
        c.add_writes(2);
        c.add_reads(1);
        let s = c.stats();
        assert_eq!(s.page_reads, 4);
        assert_eq!(s.page_writes, 2);
        assert_eq!(s.total(), 6);
    }

    #[test]
    fn clones_share_state() {
        let c = IoCounter::new();
        let c2 = c.clone();
        c2.add_writes(5);
        assert_eq!(c.stats().page_writes, 5);
    }

    #[test]
    fn since_subtracts() {
        let c = IoCounter::new();
        c.add_reads(10);
        let before = c.stats();
        c.add_reads(7);
        c.add_writes(1);
        let delta = c.stats().since(&before);
        assert_eq!(
            delta,
            IoStats {
                page_reads: 7,
                page_writes: 1
            }
        );
    }

    #[test]
    fn reset_zeroes() {
        let c = IoCounter::new();
        c.add_reads(10);
        c.reset();
        assert_eq!(c.stats().total(), 0);
    }

    #[test]
    fn counters_are_thread_safe() {
        let c = IoCounter::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.add_reads(1);
                    }
                });
            }
        });
        assert_eq!(c.stats().page_reads, 8000);
    }

    #[test]
    fn display_shows_total_and_split() {
        let c = IoCounter::new();
        c.add_reads(2);
        c.add_writes(3);
        let s = c.stats().to_string();
        assert!(s.contains('5') && s.contains('2') && s.contains('3'));
    }
}
