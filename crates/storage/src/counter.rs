//! Shared logical-I/O counters.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use anatomy_obs::Registry;

/// A point-in-time snapshot of I/O counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoStats {
    /// Pages read.
    pub page_reads: u64,
    /// Pages written.
    pub page_writes: u64,
}

impl IoStats {
    /// Total I/Os — the quantity plotted on the y-axis of the paper's
    /// Figures 8 and 9.
    pub fn total(&self) -> u64 {
        self.page_reads + self.page_writes
    }

    /// Counts accumulated since an earlier snapshot.
    pub fn since(&self, earlier: &IoStats) -> IoStats {
        IoStats {
            page_reads: self.page_reads - earlier.page_reads,
            page_writes: self.page_writes - earlier.page_writes,
        }
    }
}

impl fmt::Display for IoStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} I/Os ({} reads, {} writes)",
            self.total(),
            self.page_reads,
            self.page_writes
        )
    }
}

/// A cheaply clonable, thread-safe pair of page counters.
///
/// Every file and buffer pool participating in one experiment is created
/// with a clone of the same counter, so the experiment harness can read a
/// single total at the end.
#[derive(Debug, Clone, Default)]
pub struct IoCounter {
    inner: Arc<Counters>,
}

#[derive(Debug, Default)]
struct Counters {
    reads: AtomicU64,
    writes: AtomicU64,
    /// Optional observability mirrors (`<prefix>.page_reads` /
    /// `<prefix>.page_writes` in an `anatomy-obs` registry). `None` for
    /// counters made with [`IoCounter::new`], so the plain path keeps
    /// its two-atomics cost.
    mirror: Option<(anatomy_obs::Counter, anatomy_obs::Counter)>,
}

impl IoCounter {
    /// A fresh counter at zero.
    pub fn new() -> Self {
        IoCounter::default()
    }

    /// A fresh counter that additionally mirrors every charge into
    /// `registry` as `<prefix>.page_reads` / `<prefix>.page_writes`,
    /// so external-memory runs land in the same [`RunManifest`] as the
    /// in-memory phase spans. The mirror obeys the registry's enabled
    /// flag; [`IoCounter::stats`] always reads the local atomics and is
    /// exact either way, which is what keeps manifest I/O counts equal
    /// to the `IoStats` the Figure 8–9 harness reports.
    ///
    /// [`RunManifest`]: anatomy_obs::RunManifest
    pub fn observed(registry: &Registry, prefix: &str) -> Self {
        IoCounter {
            inner: Arc::new(Counters {
                reads: AtomicU64::new(0),
                writes: AtomicU64::new(0),
                mirror: Some((
                    registry.counter(&format!("{prefix}.page_reads")),
                    registry.counter(&format!("{prefix}.page_writes")),
                )),
            }),
        }
    }

    /// Charge `pages` page reads.
    #[inline]
    pub fn add_reads(&self, pages: u64) {
        self.inner.reads.fetch_add(pages, Ordering::Relaxed);
        if let Some((reads, _)) = &self.inner.mirror {
            reads.add(pages);
        }
    }

    /// Charge `pages` page writes.
    #[inline]
    pub fn add_writes(&self, pages: u64) {
        self.inner.writes.fetch_add(pages, Ordering::Relaxed);
        if let Some((_, writes)) = &self.inner.mirror {
            writes.add(pages);
        }
    }

    /// Snapshot the current counts.
    pub fn stats(&self) -> IoStats {
        IoStats {
            page_reads: self.inner.reads.load(Ordering::Relaxed),
            page_writes: self.inner.writes.load(Ordering::Relaxed),
        }
    }

    /// Reset both counters to zero (between experiment runs).
    pub fn reset(&self) {
        self.inner.reads.store(0, Ordering::Relaxed);
        self.inner.writes.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_accumulate() {
        let c = IoCounter::new();
        c.add_reads(3);
        c.add_writes(2);
        c.add_reads(1);
        let s = c.stats();
        assert_eq!(s.page_reads, 4);
        assert_eq!(s.page_writes, 2);
        assert_eq!(s.total(), 6);
    }

    #[test]
    fn clones_share_state() {
        let c = IoCounter::new();
        let c2 = c.clone();
        c2.add_writes(5);
        assert_eq!(c.stats().page_writes, 5);
    }

    #[test]
    fn since_subtracts() {
        let c = IoCounter::new();
        c.add_reads(10);
        let before = c.stats();
        c.add_reads(7);
        c.add_writes(1);
        let delta = c.stats().since(&before);
        assert_eq!(
            delta,
            IoStats {
                page_reads: 7,
                page_writes: 1
            }
        );
    }

    #[test]
    fn reset_zeroes() {
        let c = IoCounter::new();
        c.add_reads(10);
        c.reset();
        assert_eq!(c.stats().total(), 0);
    }

    #[test]
    fn counters_are_thread_safe() {
        let c = IoCounter::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.add_reads(1);
                    }
                });
            }
        });
        assert_eq!(c.stats().page_reads, 8000);
    }

    #[test]
    fn observed_counter_mirrors_into_registry() {
        let registry = Registry::new();
        registry.set_enabled(true);
        let c = IoCounter::observed(&registry, "io");
        c.add_reads(4);
        c.add_writes(2);
        let snap = registry.snapshot();
        assert_eq!(snap.counters["io.page_reads"], 4);
        assert_eq!(snap.counters["io.page_writes"], 2);
        // The local stats stay authoritative and identical.
        assert_eq!(
            c.stats(),
            IoStats {
                page_reads: 4,
                page_writes: 2
            }
        );
    }

    #[test]
    fn observed_counter_stays_exact_while_registry_disabled() {
        let registry = Registry::new();
        let c = IoCounter::observed(&registry, "io");
        c.add_reads(7);
        assert_eq!(registry.snapshot().counters["io.page_reads"], 0);
        assert_eq!(c.stats().page_reads, 7);
    }

    #[test]
    fn display_shows_total_and_split() {
        let c = IoCounter::new();
        c.add_reads(2);
        c.add_writes(3);
        let s = c.stats().to_string();
        assert!(s.contains('5') && s.contains('2') && s.contains('3'));
    }
}
