//! Page-size configuration.

/// The paper's page size: "with the page size set to 4096 bytes"
/// (Section 6.2).
pub const DEFAULT_PAGE_SIZE: usize = 4096;

/// The paper's memory budget: "a memory capacity of 50 pages"
/// (Section 6.2).
pub const PAPER_MEMORY_PAGES: usize = 50;

/// Page-size configuration shared by files and pools of one experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageConfig {
    /// Page size in bytes. Must be positive.
    pub page_size: usize,
}

impl PageConfig {
    /// The paper's configuration (4096-byte pages).
    pub const fn paper() -> Self {
        PageConfig {
            page_size: DEFAULT_PAGE_SIZE,
        }
    }

    /// A custom page size (primarily for tests, which use tiny pages to
    /// exercise page-boundary logic with few records).
    pub fn with_page_size(page_size: usize) -> Self {
        assert!(page_size > 0, "page size must be positive");
        PageConfig { page_size }
    }

    /// Records of `record_len` bytes that fit in one page (`b` in the
    /// paper's `O(n/b)` bounds). Zero when the record is larger than the
    /// page.
    pub fn records_per_page(&self, record_len: usize) -> usize {
        // Zero-length records are degenerate; treat a page as holding one
        // so loops still terminate.
        self.page_size.checked_div(record_len).unwrap_or(1)
    }

    /// Pages needed to store `records` records of `record_len` bytes.
    pub fn pages_for(&self, records: usize, record_len: usize) -> usize {
        let per = self.records_per_page(record_len);
        if per == 0 {
            usize::MAX // unstorable; callers validate via RecordLargerThanPage
        } else {
            records.div_ceil(per)
        }
    }
}

impl Default for PageConfig {
    fn default() -> Self {
        PageConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants() {
        assert_eq!(DEFAULT_PAGE_SIZE, 4096);
        assert_eq!(PAPER_MEMORY_PAGES, 50);
        assert_eq!(PageConfig::paper().page_size, 4096);
        assert_eq!(PageConfig::default(), PageConfig::paper());
    }

    #[test]
    fn records_per_page_floor() {
        let cfg = PageConfig::with_page_size(100);
        assert_eq!(cfg.records_per_page(30), 3);
        assert_eq!(cfg.records_per_page(100), 1);
        assert_eq!(cfg.records_per_page(101), 0);
    }

    #[test]
    fn pages_for_rounds_up() {
        let cfg = PageConfig::with_page_size(100);
        assert_eq!(cfg.pages_for(0, 30), 0);
        assert_eq!(cfg.pages_for(3, 30), 1);
        assert_eq!(cfg.pages_for(4, 30), 2);
        assert_eq!(cfg.pages_for(301, 10), 31);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_page_size_rejected() {
        let _ = PageConfig::with_page_size(0);
    }
}
