//! Page-size configuration and the on-page integrity header.

use crate::error::StorageError;

/// The paper's page size: "with the page size set to 4096 bytes"
/// (Section 6.2).
pub const DEFAULT_PAGE_SIZE: usize = 4096;

/// The paper's memory budget: "a memory capacity of 50 pages"
/// (Section 6.2).
pub const PAPER_MEMORY_PAGES: usize = 50;

/// Magic number opening every page header: `b"ANAT"` read little-endian.
pub const PAGE_MAGIC: u32 = u32::from_le_bytes(*b"ANAT");

/// Current page-format version. Readers reject anything else.
pub const PAGE_FORMAT_VERSION: u16 = 1;

/// Page-size configuration shared by files and pools of one experiment.
///
/// `page_size` is the *payload* capacity of a page; the integrity header
/// ([`PageHeader`]) is carried out of band, so record arithmetic — and
/// with it every `O(n/b)` I/O count in Figures 8-9 — is unchanged by
/// checksumming.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageConfig {
    /// Page size in bytes. Must be positive.
    pub page_size: usize,
}

impl PageConfig {
    /// The paper's configuration (4096-byte pages).
    pub const fn paper() -> Self {
        PageConfig {
            page_size: DEFAULT_PAGE_SIZE,
        }
    }

    /// A custom page size, validated: errors with
    /// [`StorageError::InvalidArgument`] for a zero page size instead of
    /// panicking. Prefer this in library code; [`PageConfig::with_page_size`]
    /// is the panicking shorthand for tests and constants.
    pub fn new(page_size: usize) -> Result<Self, StorageError> {
        if page_size == 0 {
            return Err(StorageError::InvalidArgument(
                "page size must be positive".to_string(),
            ));
        }
        Ok(PageConfig { page_size })
    }

    /// A custom page size (primarily for tests, which use tiny pages to
    /// exercise page-boundary logic with few records). Panics on a zero
    /// page size; use [`PageConfig::new`] for a typed error instead.
    pub fn with_page_size(page_size: usize) -> Self {
        PageConfig::new(page_size).expect("page size must be positive")
    }

    /// Records of `record_len` bytes that fit in one page (`b` in the
    /// paper's `O(n/b)` bounds).
    ///
    /// Errors with [`StorageError::RecordTooLarge`] when no record fits a
    /// page, and [`StorageError::InvalidArgument`] for zero-length
    /// records (a page would hold infinitely many).
    pub fn records_per_page(&self, record_len: usize) -> Result<usize, StorageError> {
        if record_len == 0 {
            return Err(StorageError::InvalidArgument(
                "zero-length records have no page capacity".to_string(),
            ));
        }
        let per = self.page_size / record_len;
        if per == 0 {
            return Err(StorageError::RecordTooLarge {
                record_len,
                page_size: self.page_size,
            });
        }
        Ok(per)
    }

    /// Pages needed to store `records` records of `record_len` bytes.
    pub fn pages_for(&self, records: usize, record_len: usize) -> Result<usize, StorageError> {
        Ok(records.div_ceil(self.records_per_page(record_len)?))
    }
}

impl Default for PageConfig {
    fn default() -> Self {
        PageConfig::paper()
    }
}

/// Integrity header attached to every stored page.
///
/// Computed by [`SeqWriter`](crate::SeqWriter) over the payload it
/// *intends* to store, and verified by [`SeqReader`](crate::SeqReader)
/// against the bytes it actually gets back, so any damage in between — a
/// short write, a flipped bit, a foreign page — surfaces as a typed
/// [`StorageError`] instead of silently corrupt records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageHeader {
    /// [`PAGE_MAGIC`], always.
    pub magic: u32,
    /// [`PAGE_FORMAT_VERSION`], always.
    pub version: u16,
    /// Records encoded in this page's payload.
    pub record_count: u32,
    /// CRC-32 (IEEE) of the payload bytes.
    pub checksum: u32,
}

impl PageHeader {
    /// Header for a payload holding `record_count` records.
    pub fn for_payload(payload: &[u8], record_count: u32) -> PageHeader {
        PageHeader {
            magic: PAGE_MAGIC,
            version: PAGE_FORMAT_VERSION,
            record_count,
            checksum: crc32(payload),
        }
    }

    /// Verify `payload` (as read back from page `page`) against this
    /// header, for records of `record_len` bytes.
    ///
    /// Checks run in a fixed order — magic, version, length, checksum —
    /// so each physical fault maps to one deterministic error: a short
    /// read/write is reported as [`StorageError::Truncated`] (the length
    /// check fires before the checksum one), a bit flip as
    /// [`StorageError::ChecksumMismatch`].
    pub fn verify(
        &self,
        payload: &[u8],
        record_len: usize,
        page: usize,
    ) -> Result<(), StorageError> {
        if self.magic != PAGE_MAGIC {
            return Err(StorageError::BadMagic {
                page,
                found: self.magic,
            });
        }
        if self.version != PAGE_FORMAT_VERSION {
            return Err(StorageError::UnsupportedVersion {
                page,
                found: self.version,
            });
        }
        let expected = (self.record_count as usize).saturating_mul(record_len);
        if payload.len() != expected {
            return Err(StorageError::Truncated {
                page,
                expected,
                found: payload.len(),
            });
        }
        let found = crc32(payload);
        if found != self.checksum {
            return Err(StorageError::ChecksumMismatch {
                page,
                expected: self.checksum,
                found,
            });
        }
        Ok(())
    }
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE 802.3 polynomial, the zlib/`cksum -o 3` variant) of
/// `bytes`. Table-driven and dependency-free; this is the page checksum.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants() {
        assert_eq!(DEFAULT_PAGE_SIZE, 4096);
        assert_eq!(PAPER_MEMORY_PAGES, 50);
        assert_eq!(PageConfig::paper().page_size, 4096);
        assert_eq!(PageConfig::default(), PageConfig::paper());
    }

    #[test]
    fn records_per_page_floor() {
        let cfg = PageConfig::with_page_size(100);
        assert_eq!(cfg.records_per_page(30).unwrap(), 3);
        assert_eq!(cfg.records_per_page(100).unwrap(), 1);
    }

    #[test]
    fn oversized_and_degenerate_records_are_typed_errors() {
        // Regression: these used to report capacity 0 / usize::MAX and
        // let callers divide by zero downstream.
        let cfg = PageConfig::with_page_size(100);
        assert_eq!(
            cfg.records_per_page(101),
            Err(StorageError::RecordTooLarge {
                record_len: 101,
                page_size: 100
            })
        );
        assert_eq!(
            cfg.pages_for(5, 101),
            Err(StorageError::RecordTooLarge {
                record_len: 101,
                page_size: 100
            })
        );
        assert!(matches!(
            cfg.records_per_page(0),
            Err(StorageError::InvalidArgument(_))
        ));
        assert!(matches!(
            cfg.pages_for(10, 0),
            Err(StorageError::InvalidArgument(_))
        ));
    }

    #[test]
    fn pages_for_rounds_up() {
        let cfg = PageConfig::with_page_size(100);
        assert_eq!(cfg.pages_for(0, 30).unwrap(), 0);
        assert_eq!(cfg.pages_for(3, 30).unwrap(), 1);
        assert_eq!(cfg.pages_for(4, 30).unwrap(), 2);
        assert_eq!(cfg.pages_for(301, 10).unwrap(), 31);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_page_size_rejected() {
        let _ = PageConfig::with_page_size(0);
    }

    #[test]
    fn typed_constructor_rejects_zero_without_panicking() {
        assert!(matches!(
            PageConfig::new(0),
            Err(StorageError::InvalidArgument(_))
        ));
        assert_eq!(PageConfig::new(64).unwrap(), PageConfig::with_page_size(64));
    }

    #[test]
    fn crc32_known_answer() {
        // The classic check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn header_verifies_intact_payload_and_catches_damage() {
        let payload = vec![7u8; 24];
        let h = PageHeader::for_payload(&payload, 3);
        assert_eq!(h.magic, PAGE_MAGIC);
        assert_eq!(h.version, PAGE_FORMAT_VERSION);
        h.verify(&payload, 8, 0).unwrap();

        // Single bit flip -> checksum mismatch.
        let mut flipped = payload.clone();
        flipped[5] ^= 0x10;
        assert!(matches!(
            h.verify(&flipped, 8, 4),
            Err(StorageError::ChecksumMismatch { page: 4, .. })
        ));

        // Lost tail -> truncation, reported before the checksum check.
        assert!(matches!(
            h.verify(&payload[..16], 8, 2),
            Err(StorageError::Truncated {
                page: 2,
                expected: 24,
                found: 16
            })
        ));

        // Foreign bytes -> bad magic wins over everything else.
        let alien = PageHeader {
            magic: 0x1234_5678,
            ..h
        };
        assert!(matches!(
            alien.verify(&flipped, 8, 1),
            Err(StorageError::BadMagic { page: 1, .. })
        ));
        let future = PageHeader { version: 2, ..h };
        assert!(matches!(
            future.verify(&payload, 8, 1),
            Err(StorageError::UnsupportedVersion { page: 1, found: 2 })
        ));
    }
}
