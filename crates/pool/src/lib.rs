//! # anatomy-pool
//!
//! A persistent, chunked worker pool for the experiment harness.
//!
//! The bench runner used to spawn fresh OS threads (`std::thread::scope`)
//! for every `par_map` call — thousands of times across the Figure 4–9
//! sweeps, paying thread spawn/join latency per query batch. This crate
//! spawns the workers **once** ([`Pool::global`]) and reuses them for
//! every batch, with a scoped API that accepts borrowed data:
//!
//! ```
//! use anatomy_pool::Pool;
//!
//! let squares = Pool::global().par_map(&[1u64, 2, 3], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9]);
//! ```
//!
//! Design notes:
//!
//! * **Chunked, not work-stealing.** A batch is split into contiguous
//!   chunks handed out through one atomic cursor; workers (and the
//!   caller, which always participates) grab the next chunk when free.
//!   That gives dynamic load balancing without per-item synchronization
//!   or deque machinery.
//! * **Scoped.** `par_map` blocks until every worker involved in the
//!   batch has finished, so closures may borrow from the caller's stack.
//!   Waiting callers *help*: they drain other queued batch shares while
//!   blocked, which makes nested `par_map` calls (a parallel sweep whose
//!   cells run parallel query batches) deadlock-free on one shared pool.
//! * **Cost-aware serial cutoff.** A flat `len < 32` threshold is wrong
//!   for e.g. 16 grid points that each anatomize 500k rows. The
//!   [`ItemCost`] hint lets callers declare items cheap (default cutoff)
//!   or heavy (parallelize from 2 items).

use std::collections::VecDeque;
use std::mem::{ManuallyDrop, MaybeUninit};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// How expensive one item of a `par_map` batch is, relative to the cost
/// of scheduling it onto another thread.
///
/// This is the caller-supplied hint deciding the serial cutoff: the pool
/// cannot see inside the closure, and "many cheap items" and "few
/// expensive items" want opposite treatment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ItemCost {
    /// Microseconds-scale items (one query against an index): run
    /// serially below [`CHEAP_SERIAL_CUTOFF`] items.
    #[default]
    Cheap,
    /// Milliseconds-scale-or-more items (one experiment cell, one
    /// anatomization): parallelize from 2 items up.
    Heavy,
}

/// Batches of [`ItemCost::Cheap`] items shorter than this run serially.
pub const CHEAP_SERIAL_CUTOFF: usize = 32;

impl ItemCost {
    fn serial_cutoff(self) -> usize {
        match self {
            ItemCost::Cheap => CHEAP_SERIAL_CUTOFF,
            ItemCost::Heavy => 2,
        }
    }

    /// Chunk size for a batch of `len` items on `threads` lanes: heavy
    /// items are handed out one by one, cheap ones in blocks (several per
    /// lane so the cursor still load-balances uneven chunks).
    fn chunk_size(self, len: usize, threads: usize) -> usize {
        match self {
            ItemCost::Cheap => (len / (threads * 4)).max(1),
            ItemCost::Heavy => 1,
        }
    }
}

/// A share of one batch, queued for workers to pick up. The pointer is a
/// lifetime-erased `&BatchState` living on the `par_map` caller's stack;
/// it stays valid because `par_map` does not return before `pending`
/// reaches zero, and every share bumps `pending` until it has run.
struct Share {
    state: *const (),
    /// The `bool` marks the lane: `true` when a *waiting caller* ran the
    /// share while help-draining, `false` for a dedicated worker.
    run: unsafe fn(*const (), &PoolInner, bool),
}

// SAFETY: the pointed-to BatchState is Sync (it only hands out work
// through atomics) and outlives the share per the scoped protocol above.
unsafe impl Send for Share {}

/// Scheduling instruments, registered once per pool against the
/// process-wide `anatomy-obs` registry. Every handle is a no-op while
/// the registry is disabled (the default), so the hot path pays one
/// relaxed load per event.
struct PoolObs {
    /// Shares currently sitting in the queue (gauge + high-water mark).
    queue_depth: anatomy_obs::Gauge,
    /// Parallel batches dispatched (serial-cutoff batches not counted).
    batches: anatomy_obs::Counter,
    /// Shares popped by dedicated workers.
    worker_shares: anatomy_obs::Counter,
    /// Shares popped by a *waiting caller* helping to drain the queue —
    /// the pool's work-conservation path for nested batches.
    help_drained: anatomy_obs::Counter,
    /// Wall time one share spent draining its batch's cursor, ns.
    share_ns: anatomy_obs::Histogram,
}

impl PoolObs {
    fn new() -> PoolObs {
        let registry = anatomy_obs::global();
        PoolObs {
            queue_depth: registry.gauge("pool.queue_depth"),
            batches: registry.counter("pool.batches"),
            worker_shares: registry.counter("pool.worker_shares"),
            help_drained: registry.counter("pool.help_drained"),
            share_ns: registry.histogram("pool.share_ns"),
        }
    }
}

struct PoolInner {
    queue: Mutex<VecDeque<Share>>,
    /// Signaled on every queue push and every share completion; workers
    /// and helping waiters share it.
    activity: Condvar,
    shutdown: AtomicBool,
    workers: usize,
    obs: PoolObs,
}

/// A persistent worker pool. See the crate docs.
pub struct Pool {
    inner: Arc<PoolInner>,
    handles: Vec<JoinHandle<()>>,
}

impl Pool {
    /// Pool with `threads` total lanes of parallelism: the caller of each
    /// batch counts as one lane, so `threads - 1` OS threads are spawned.
    /// `Pool::new(1)` spawns nothing and runs every batch inline.
    pub fn new(threads: usize) -> Pool {
        let workers = threads.max(1) - 1;
        let inner = Arc::new(PoolInner {
            queue: Mutex::new(VecDeque::new()),
            activity: Condvar::new(),
            shutdown: AtomicBool::new(false),
            workers,
            obs: PoolObs::new(),
        });
        let handles = (0..workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("anatomy-pool-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn pool worker")
            })
            .collect();
        Pool { inner, handles }
    }

    /// The process-wide pool, sized to the machine and spawned on first
    /// use. All harness parallelism shares it, so nested parallel calls
    /// time-slice one set of threads instead of oversubscribing.
    pub fn global() -> &'static Pool {
        static GLOBAL: OnceLock<Pool> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let threads = std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(4);
            Pool::new(threads)
        })
    }

    /// Total lanes of parallelism (spawned workers + the calling thread).
    pub fn threads(&self) -> usize {
        self.inner.workers + 1
    }

    /// Order-preserving parallel map with the default ([`ItemCost::Cheap`])
    /// serial cutoff.
    pub fn par_map<T: Sync, R: Send>(&self, items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
        self.par_map_hinted(items, ItemCost::Cheap, f)
    }

    /// Order-preserving parallel map with an explicit cost hint.
    ///
    /// # Panics
    ///
    /// Re-raises the first panic of `f` on the calling thread, after all
    /// lanes of the batch have stopped. Results computed before the
    /// panic are leaked, not dropped.
    pub fn par_map_hinted<T: Sync, R: Send, F: Fn(&T) -> R + Sync>(
        &self,
        items: &[T],
        cost: ItemCost,
        f: F,
    ) -> Vec<R> {
        let n = items.len();
        if n < cost.serial_cutoff() || self.threads() == 1 {
            return items.iter().map(f).collect();
        }

        let mut slots: Vec<MaybeUninit<R>> = Vec::with_capacity(n);
        // SAFETY: MaybeUninit needs no initialization; len tracks capacity.
        unsafe { slots.set_len(n) };

        let chunk = cost.chunk_size(n, self.threads());
        let state: BatchState<T, R, F> = BatchState {
            items: items.as_ptr() as *const (),
            slots: slots.as_mut_ptr() as *mut (),
            len: n,
            chunk,
            cursor: AtomicUsize::new(0),
            pending: AtomicUsize::new(0),
            panicked: AtomicBool::new(false),
            // A nonzero batch id (drawn from the tracer's span-id space,
            // so it is process-unique) marks this batch for the journal.
            trace_batch: if anatomy_obs::tracer().enabled() {
                anatomy_obs::tracer().next_span_id()
            } else {
                0
            },
            f: &f as *const _ as *const (),
            marker: std::marker::PhantomData,
        };

        // Offer one share per worker (capped by the chunk count beyond
        // the caller's own lane); each share bumps `pending` until done.
        let shares = self.inner.workers.min(n.div_ceil(chunk).saturating_sub(1));
        if shares > 0 {
            state.pending.store(shares, Ordering::Relaxed);
            let mut queue = self.inner.queue.lock().expect("pool lock");
            for _ in 0..shares {
                queue.push_back(Share {
                    state: &state as *const BatchState<T, R, _> as *const (),
                    run: run_batch_share::<T, R, F>,
                });
            }
            drop(queue);
            self.inner.obs.batches.incr();
            self.inner.obs.queue_depth.add(shares as i64);
            if state.trace_batch != 0 {
                anatomy_obs::tracer().emit(anatomy_obs::EventKind::PoolDispatch {
                    batch: state.trace_batch,
                    shares: shares as u64,
                });
            }
            self.inner.activity.notify_all();
        }

        // The caller is lane zero.
        let caller = catch_unwind(AssertUnwindSafe(|| state.work()));
        self.wait_for_batch(&state.pending);

        if caller.is_err() || state.panicked.load(Ordering::Acquire) {
            // Slots are in an unknown mixed state; leak them rather than
            // double-drop.
            std::mem::forget(slots);
            match caller {
                Err(payload) => resume_unwind(payload),
                Ok(()) => panic!("anatomy-pool worker panicked during par_map"),
            }
        }

        // SAFETY: every index in 0..n was written exactly once (cursor
        // hands out disjoint ranges; pending == 0 means all lanes done and
        // their writes are ordered before the Acquire loads in wait).
        let mut slots = ManuallyDrop::new(slots);
        unsafe { Vec::from_raw_parts(slots.as_mut_ptr() as *mut R, n, slots.capacity()) }
    }

    /// [`Pool::par_map_hinted`] for side-effecting closures.
    pub fn par_for_each<T: Sync>(&self, items: &[T], cost: ItemCost, f: impl Fn(&T) + Sync) {
        self.par_map_hinted(items, cost, |item| f(item));
    }

    /// Block until `pending` hits zero, running other queued shares while
    /// waiting (so nested batches always make progress). No lost wakeups:
    /// completions decrement `pending` and notify under the queue lock,
    /// and this loop re-checks `pending` while holding it.
    fn wait_for_batch(&self, pending: &AtomicUsize) {
        loop {
            if pending.load(Ordering::Acquire) == 0 {
                return;
            }
            let mut queue = self.inner.queue.lock().expect("pool lock");
            if let Some(share) = queue.pop_front() {
                drop(queue);
                self.inner.obs.queue_depth.add(-1);
                self.inner.obs.help_drained.incr();
                // SAFETY: shares in the queue point at live batch states
                // (their owners are blocked right here until they run).
                unsafe { (share.run)(share.state, &self.inner, true) };
                continue;
            }
            if pending.load(Ordering::Acquire) == 0 {
                return;
            }
            drop(self.inner.activity.wait(queue).expect("pool lock"));
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.activity.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Shared per-batch state, living on the `par_map` caller's stack.
struct BatchState<T, R, F> {
    items: *const (),
    slots: *mut (),
    len: usize,
    chunk: usize,
    cursor: AtomicUsize,
    /// Queued shares that have not finished yet.
    pending: AtomicUsize,
    panicked: AtomicBool,
    /// Journal id for this batch's dispatch/share-done events, `0` when
    /// tracing was off at dispatch.
    trace_batch: u64,
    f: *const (),
    marker: std::marker::PhantomData<fn(&F, &T) -> R>,
}

impl<T: Sync, R: Send, F: Fn(&T) -> R + Sync> BatchState<T, R, F> {
    /// Pull chunks off the cursor until the batch is drained.
    fn work(&self) {
        // SAFETY: items/f outlive the batch (scoped protocol); each slot
        // index is handed to exactly one lane by the cursor.
        let items = unsafe { std::slice::from_raw_parts(self.items as *const T, self.len) };
        let slots = self.slots as *mut MaybeUninit<R>;
        let f = unsafe { &*(self.f as *const F) };
        loop {
            if self.panicked.load(Ordering::Relaxed) {
                return;
            }
            let start = self.cursor.fetch_add(self.chunk, Ordering::Relaxed);
            if start >= self.len {
                return;
            }
            let end = (start + self.chunk).min(self.len);
            for (off, item) in items[start..end].iter().enumerate() {
                unsafe { (*slots.add(start + off)).write(f(item)) };
            }
        }
    }
}

/// Type-erased entry point a queued [`Share`] runs on a worker.
///
/// SAFETY contract: `ptr` is a live `&BatchState<T, R, F>` whose owner
/// blocks until `pending` reaches zero. The completion decrement happens
/// under the queue lock so a waiter in [`Pool::wait_for_batch`] cannot
/// miss the notification.
unsafe fn run_batch_share<T: Sync, R: Send, F: Fn(&T) -> R + Sync>(
    ptr: *const (),
    inner: &PoolInner,
    helped: bool,
) {
    let state = unsafe { &*(ptr as *const BatchState<T, R, F>) };
    // Only read the clock when the registry records; the histogram's own
    // enabled check would not save the two `Instant` calls.
    let start = anatomy_obs::global()
        .enabled()
        .then(std::time::Instant::now);
    if catch_unwind(AssertUnwindSafe(|| state.work())).is_err() {
        state.panicked.store(true, Ordering::Release);
    }
    if let Some(start) = start {
        inner
            .obs
            .share_ns
            .record(start.elapsed().as_nanos().min(u64::MAX as u128) as u64);
    }
    if state.trace_batch != 0 {
        anatomy_obs::tracer().emit(anatomy_obs::EventKind::PoolShareDone {
            batch: state.trace_batch,
            helped,
        });
    }
    let guard = inner.queue.lock().expect("pool lock");
    state.pending.fetch_sub(1, Ordering::Release);
    inner.activity.notify_all();
    drop(guard);
}

fn worker_loop(inner: &PoolInner) {
    loop {
        let share = {
            let mut queue = inner.queue.lock().expect("pool lock");
            loop {
                if let Some(share) = queue.pop_front() {
                    break share;
                }
                if inner.shutdown.load(Ordering::Acquire) {
                    return;
                }
                queue = inner.activity.wait(queue).expect("pool lock");
            }
        };
        inner.obs.queue_depth.add(-1);
        inner.obs.worker_shares.incr();
        // SAFETY: see Share.
        unsafe { (share.run)(share.state, inner, false) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn par_map_preserves_order() {
        let pool = Pool::new(4);
        let items: Vec<u64> = (0..1000).collect();
        let out = pool.par_map(&items, |&x| x * 2);
        assert_eq!(out, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn serial_cutoff_still_computes() {
        let pool = Pool::new(4);
        let out = pool.par_map(&[1u32, 2, 3], |&x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn heavy_hint_parallelizes_tiny_batches() {
        // Two items, each slow: with the Heavy hint both lanes engage.
        // (Correctness is asserted; overlap we can only encourage.)
        let pool = Pool::new(2);
        let out = pool.par_map_hinted(&[30u64, 40], ItemCost::Heavy, |&ms| {
            std::thread::sleep(std::time::Duration::from_millis(ms));
            ms * 10
        });
        assert_eq!(out, vec![300, 400]);
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = Pool::new(1);
        let items: Vec<u64> = (0..100).collect();
        assert_eq!(pool.par_map(&items, |&x| x + 7)[99], 106);
    }

    #[test]
    fn nested_par_map_completes() {
        let pool = Pool::new(3);
        let outer: Vec<u64> = (0..8).collect();
        let out = pool.par_map_hinted(&outer, ItemCost::Heavy, |&o| {
            let inner: Vec<u64> = (0..200).collect();
            pool.par_map(&inner, |&i| i * o).iter().sum::<u64>()
        });
        let expect: Vec<u64> = outer.iter().map(|&o| o * (199 * 200 / 2)).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn saturated_nested_batches_complete_via_help_draining() {
        // Many caller threads on a small pool, every outer item issuing
        // a nested Heavy batch: the share queue saturates with shares
        // from a dozen live batches while every lane is occupied. The
        // blocked callers must help-drain their way out; a pool that
        // parked waiters without draining would deadlock here. The
        // watchdog turns that deadlock into a loud failure instead of a
        // hung test binary.
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            let pool = Pool::new(3); // 2 workers, 6 concurrent callers
            std::thread::scope(|s| {
                for t in 0..6u64 {
                    let pool = &pool;
                    s.spawn(move || {
                        let outer: Vec<u64> = (0..8).map(|i| i + 100 * t).collect();
                        let sums = pool.par_map_hinted(&outer, ItemCost::Heavy, |&o| {
                            let inner: Vec<u64> = (o..o + 64).collect();
                            pool.par_map_hinted(&inner, ItemCost::Heavy, |&i| i * 2)
                                .iter()
                                .sum::<u64>()
                        });
                        for (i, &o) in outer.iter().enumerate() {
                            let expect: u64 = (o..o + 64).map(|i| i * 2).sum();
                            assert_eq!(sums[i], expect, "caller {t}, outer item {i}");
                        }
                    });
                }
            });
            tx.send(()).unwrap();
        });
        rx.recv_timeout(std::time::Duration::from_secs(120))
            .expect("saturated nested batches deadlocked");
    }

    #[test]
    fn heavy_batch_of_exactly_threads_items_engages_every_lane() {
        // shares = workers.min(chunks - 1) must queue `threads - 1`
        // shares for a Heavy batch of `threads` items — the caller takes
        // one chunk, every worker gets one. An off-by-one here shows up
        // as a high-water concurrency below `threads`, because the lane
        // running two items runs them sequentially. The spin below is a
        // barrier: each lane waits (bounded) until all four are live, so
        // with correct share accounting the high-water is exactly 4.
        use std::time::{Duration, Instant};
        let pool = Pool::new(4);
        let live = AtomicUsize::new(0);
        let high = AtomicUsize::new(0);
        let items: Vec<u64> = (0..4).collect();
        pool.par_for_each(&items, ItemCost::Heavy, |_| {
            live.fetch_add(1, Ordering::SeqCst);
            high.fetch_max(live.load(Ordering::SeqCst), Ordering::SeqCst);
            let deadline = Instant::now() + Duration::from_secs(5);
            while live.load(Ordering::SeqCst) < 4 && Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(1));
            }
            high.fetch_max(live.load(Ordering::SeqCst), Ordering::SeqCst);
            live.fetch_sub(1, Ordering::SeqCst);
        });
        assert_eq!(
            high.load(Ordering::SeqCst),
            4,
            "a lane sat idle on a Heavy batch of exactly `threads` items"
        );
    }

    #[test]
    fn global_pool_is_shared_and_reused() {
        let a = Pool::global() as *const Pool;
        let b = Pool::global() as *const Pool;
        assert_eq!(a, b);
        assert!(Pool::global().threads() >= 1);
        let sum: u64 = Pool::global()
            .par_map(&(0..500).collect::<Vec<u64>>(), |&x| x)
            .iter()
            .sum();
        assert_eq!(sum, 499 * 500 / 2);
    }

    #[test]
    fn borrows_caller_stack_state() {
        let pool = Pool::new(4);
        let total = AtomicU64::new(0);
        let items: Vec<u64> = (1..=100).collect();
        pool.par_for_each(&items, ItemCost::Cheap, |&x| {
            total.fetch_add(x, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 5050);
    }

    #[test]
    fn panics_propagate_to_caller() {
        let pool = Pool::new(4);
        let items: Vec<u64> = (0..100).collect();
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.par_map(&items, |&x| {
                assert!(x != 57, "boom");
                x
            })
        }));
        assert!(result.is_err());
        // The pool survives a panicked batch.
        assert_eq!(pool.par_map(&items, |&x| x).len(), 100);
    }

    #[test]
    fn many_sequential_batches_reuse_workers() {
        let pool = Pool::new(4);
        for round in 0..200u64 {
            let items: Vec<u64> = (0..64).collect();
            let out = pool.par_map(&items, |&x| x + round);
            assert_eq!(out[63], 63 + round);
        }
    }
}
